// Determinism of the serving layer: (seed, trace) fully determines every
// per-request latency record — across fresh simulators, across repeated
// runs on one warm simulator (run-relative time base), and across
// FCC_SWEEP_THREADS settings when points run under the sweep runner.
#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "gpu/machine.h"
#include "plan/plan_cache.h"
#include "serve/arrivals.h"
#include "serve/catalog.h"
#include "serve/simulator.h"
#include "shmem/world.h"
#include "sweep_runner.h"

namespace fcc::serve {
namespace {

gpu::Machine::Config one_node_four_gpus() {
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = 4;
  return mc;
}

std::vector<Arrival> smoke_trace(std::uint64_t seed, int n = 80,
                                 double rps = 4e4) {
  const auto weights = class_weights(default_catalog(4));
  return poisson_trace(rps, n, seed, weights);
}

/// Fresh machine + world + simulator, one run.
ServeReport run_fresh(const std::vector<Arrival>& trace) {
  gpu::Machine machine(one_node_four_gpus());
  shmem::World world(machine);
  Simulator sim(machine, world, default_catalog(machine.num_pes()));
  return sim.run(trace);
}

TEST(ServeDeterminism, PoissonTraceIsSeedDeterministic) {
  const auto weights = class_weights(default_catalog(4));
  const auto a = poisson_trace(5e4, 200, 42, weights);
  const auto b = poisson_trace(5e4, 200, 42, weights);
  EXPECT_EQ(a, b);
  const auto c = poisson_trace(5e4, 200, 43, weights);
  EXPECT_NE(a, c);
}

TEST(ServeDeterminism, FreshRunsAreByteIdentical) {
  const auto trace = smoke_trace(7);
  const ServeReport r1 = run_fresh(trace);
  const ServeReport r2 = run_fresh(trace);
  EXPECT_EQ(r1.records, r2.records);
  EXPECT_EQ(r1.per_class, r2.per_class);
  EXPECT_EQ(r1.overall, r2.overall);
  EXPECT_EQ(r1.last_end, r2.last_end);
}

TEST(ServeDeterminism, WarmSimulatorMatchesColdRun) {
  // Run-relative timestamps: a warm simulator (engine clock, link free
  // times, op allocations all advanced) must reproduce the cold run's
  // records exactly.
  const auto trace = smoke_trace(11);
  const ServeReport cold = run_fresh(trace);

  gpu::Machine machine(one_node_four_gpus());
  shmem::World world(machine);
  Simulator sim(machine, world, default_catalog(machine.num_pes()));
  const ServeReport warm1 = sim.run(trace);
  const ServeReport warm2 = sim.run(trace);
  EXPECT_EQ(warm1.records, cold.records);
  EXPECT_EQ(warm2.records, cold.records);
  EXPECT_EQ(warm2.overall, cold.overall);
}

TEST(ServeDeterminism, TimelineInvariantsHold) {
  const auto trace = smoke_trace(13, /*n=*/120);
  const ServeReport report = run_fresh(trace);
  ASSERT_EQ(report.records.size(), trace.size());
  EXPECT_EQ(report.overall.completed + report.overall.rejected,
            static_cast<std::int64_t>(trace.size()));
  ServeConfig defaults;
  for (const RequestRecord& r : report.records) {
    EXPECT_EQ(r.arrival, trace[static_cast<std::size_t>(r.id)].t);
    if (r.rejected) continue;
    EXPECT_LE(r.arrival, r.start);
    EXPECT_LE(r.start, r.end);
    EXPECT_GE(r.batch_size, 1);
    EXPECT_LE(r.batch_size, defaults.policy.max_batch);
  }
}

TEST(ServeDeterminism, SweepThreadCountDoesNotChangeRecords) {
  // Each sweep point builds its own machine, so points are independent —
  // the parallel sweep runner must return index-ordered, byte-identical
  // results no matter how many host threads execute it.
  setenv("FCC_BENCH_OUT", "/tmp/fcc_test_serve_sweep_out", 1);
  auto point = [](int i) {
    const auto trace =
        smoke_trace(1000 + static_cast<std::uint64_t>(i), /*n=*/60,
                    /*rps=*/3e4 * (i + 1));
    return run_fresh(trace).records;
  };

  setenv("FCC_SWEEP_THREADS", "1", 1);
  const auto serial = fccbench::run_sweep<std::vector<RequestRecord>>(
      "serve_determinism_serial", 4, point);
  setenv("FCC_SWEEP_THREADS", "4", 1);
  const auto parallel = fccbench::run_sweep<std::vector<RequestRecord>>(
      "serve_determinism_parallel", 4, point);
  unsetenv("FCC_SWEEP_THREADS");
  unsetenv("FCC_BENCH_OUT");

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sweep point " << i;
  }
}

TEST(ServeDeterminism, PlannerEnabledRunsAreByteIdentical) {
  // Routing every class chain through the planning pipeline must not
  // perturb determinism: planning is pure host work, so two fresh
  // planner-enabled simulators produce byte-identical records.
  const auto trace = smoke_trace(19);
  auto run_planned = [&] {
    gpu::Machine machine(one_node_four_gpus());
    shmem::World world(machine);
    ServeConfig cfg;
    cfg.planner = true;
    Simulator sim(machine, world, default_catalog(machine.num_pes()), cfg);
    return sim.run(trace);
  };
  const ServeReport a = run_planned();
  const ServeReport b = run_planned();
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.per_class, b.per_class);
  EXPECT_GT(a.plan.chains_planned, 0);
  // Counters (minus host wall-clock) are part of the determinism surface.
  EXPECT_EQ(a.plan.fused_stages, b.plan.fused_stages);
  EXPECT_EQ(a.plan.baseline_stages, b.plan.baseline_stages);
  EXPECT_EQ(a.plan.algo_overrides, b.plan.algo_overrides);
}

TEST(ServeDeterminism, WarmPlanCacheReplaysColdDecisions) {
  // Two simulators sharing one PlanCache: the second's chains hit the
  // cache (zero passes re-run) and its simulated records match the cold
  // planner's byte for byte — a warm plan replay changes nothing.
  const auto trace = smoke_trace(23);
  plan::PlanCache cache(32);
  auto run_shared = [&] {
    gpu::Machine machine(one_node_four_gpus());
    shmem::World world(machine);
    ServeConfig cfg;
    cfg.planner = true;
    cfg.plan_cache = &cache;
    Simulator sim(machine, world, default_catalog(machine.num_pes()), cfg);
    ServeReport report = sim.run(trace);
    return std::make_pair(std::move(report), sim.plan_reports());
  };

  const auto [cold, cold_reports] = run_shared();
  EXPECT_EQ(cold.plan.cache_hits, 0);
  EXPECT_GT(cold.plan.cache_misses, 0);
  EXPECT_GT(cold.plan.passes_run, 0);

  const auto [warm, warm_reports] = run_shared();
  EXPECT_EQ(warm.plan.cache_hits, cold.plan.cache_misses);
  EXPECT_EQ(warm.plan.cache_misses, 0);
  EXPECT_EQ(warm.plan.passes_run, 0);
  ASSERT_EQ(warm_reports.size(), cold_reports.size());
  for (std::size_t c = 0; c < warm_reports.size(); ++c) {
    EXPECT_TRUE(warm_reports[c].cache_hit) << "class " << c;
    EXPECT_TRUE(warm_reports[c].passes.empty()) << "class " << c;
    EXPECT_EQ(warm_reports[c].graph_key, cold_reports[c].graph_key);
  }
  EXPECT_EQ(warm.records, cold.records);
  EXPECT_EQ(warm.per_class, cold.per_class);
}

TEST(ServeDeterminism, SweepThreadsDoNotChangePlannedRecords) {
  // The planner-enabled variant of the sweep-thread invariant: each point
  // plans with its own cache, so host-thread interleaving can't leak into
  // the planned decisions or the records.
  setenv("FCC_BENCH_OUT", "/tmp/fcc_test_serve_sweep_out", 1);
  auto point = [](int i) {
    const auto trace =
        smoke_trace(2000 + static_cast<std::uint64_t>(i), /*n=*/60,
                    /*rps=*/3e4 * (i + 1));
    gpu::Machine machine(one_node_four_gpus());
    shmem::World world(machine);
    plan::PlanCache cache(16);  // per-point: PlanCache is not thread-safe
    ServeConfig cfg;
    cfg.planner = true;
    cfg.plan_cache = &cache;
    Simulator sim(machine, world, default_catalog(machine.num_pes()), cfg);
    return sim.run(trace).records;
  };

  setenv("FCC_SWEEP_THREADS", "1", 1);
  const auto serial = fccbench::run_sweep<std::vector<RequestRecord>>(
      "serve_planned_determinism_serial", 4, point);
  setenv("FCC_SWEEP_THREADS", "4", 1);
  const auto parallel = fccbench::run_sweep<std::vector<RequestRecord>>(
      "serve_planned_determinism_parallel", 4, point);
  unsetenv("FCC_SWEEP_THREADS");
  unsetenv("FCC_BENCH_OUT");

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sweep point " << i;
  }
}

TEST(ServeDeterminism, BaselineBackendAlsoDeterministic) {
  const auto trace = smoke_trace(17, /*n=*/40);
  auto run_baseline = [&] {
    gpu::Machine machine(one_node_four_gpus());
    shmem::World world(machine);
    ServeConfig cfg;
    cfg.backend = fw::Backend::kBaseline;
    Simulator sim(machine, world, default_catalog(machine.num_pes()), cfg);
    return sim.run(trace);
  };
  const ServeReport a = run_baseline();
  const ServeReport b = run_baseline();
  EXPECT_EQ(a.records, b.records);
}

}  // namespace
}  // namespace fcc::serve

// Synchronization primitives: OneShot, Condition, Semaphore, JoinCounter.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace fcc::sim {
namespace {

Task waiter(Engine& e, OneShot& ev, std::vector<TimeNs>& log) {
  co_await ev.wait();
  log.push_back(e.now());
}

Task setter(Engine& e, OneShot& ev, TimeNs at) {
  co_await delay(e, at);
  ev.set();
}

TEST(OneShot, WakesAllWaitersAtSetTime) {
  Engine e;
  OneShot ev(e);
  std::vector<TimeNs> log;
  waiter(e, ev, log);
  waiter(e, ev, log);
  setter(e, ev, 50);
  e.run();
  EXPECT_EQ(log, (std::vector<TimeNs>{50, 50}));
  EXPECT_EQ(e.live_tasks(), 0);
}

TEST(OneShot, WaitAfterSetDoesNotSuspend) {
  Engine e;
  OneShot ev(e);
  ev.set();
  std::vector<TimeNs> log;
  waiter(e, ev, log);
  // Completed synchronously at time 0 without needing e.run().
  EXPECT_EQ(log, (std::vector<TimeNs>{0}));
  EXPECT_EQ(e.live_tasks(), 0);
}

TEST(OneShot, SetIsIdempotent) {
  Engine e;
  OneShot ev(e);
  ev.set();
  ev.set();
  EXPECT_TRUE(ev.is_set());
}

Task cond_waiter(Engine& e, Condition& c, const int& value, int threshold,
                 std::vector<TimeNs>& log) {
  while (value < threshold) co_await c.wait();
  log.push_back(e.now());
}

Task cond_incrementer(Engine& e, Condition& c, int& value) {
  for (int i = 0; i < 5; ++i) {
    co_await delay(e, 10);
    ++value;
    c.notify_all();
  }
}

TEST(Condition, PredicateLoopsWakeAtRightTimes) {
  Engine e;
  Condition c(e);
  int value = 0;
  std::vector<TimeNs> log;
  cond_waiter(e, c, value, 2, log);
  cond_waiter(e, c, value, 5, log);
  cond_incrementer(e, c, value);
  e.run();
  EXPECT_EQ(log, (std::vector<TimeNs>{20, 50}));
  EXPECT_EQ(e.live_tasks(), 0);
}

Task sem_user(Engine& e, Semaphore& s, TimeNs hold, std::vector<TimeNs>& log) {
  co_await s.acquire();
  log.push_back(e.now());
  co_await delay(e, hold);
  s.release();
}

TEST(Semaphore, SerializesBeyondCapacity) {
  Engine e;
  Semaphore s(e, 2);
  std::vector<TimeNs> starts;
  for (int i = 0; i < 4; ++i) sem_user(e, s, 100, starts);
  e.run();
  // Two run immediately; the next two start as permits free up.
  EXPECT_EQ(starts, (std::vector<TimeNs>{0, 0, 100, 100}));
  EXPECT_EQ(s.available(), 2);
}

TEST(Semaphore, FifoHandoff) {
  Engine e;
  Semaphore s(e, 1);
  std::vector<TimeNs> starts;
  sem_user(e, s, 10, starts);
  sem_user(e, s, 20, starts);
  sem_user(e, s, 30, starts);
  e.run();
  EXPECT_EQ(starts, (std::vector<TimeNs>{0, 10, 30}));
}

Task join_worker(Engine& e, JoinCounter& j, TimeNs dur) {
  co_await delay(e, dur);
  j.arrive();
}

Task join_waiter(Engine& e, JoinCounter& j, TimeNs& done_at) {
  co_await j.wait();
  done_at = e.now();
}

TEST(JoinCounter, FiresWhenAllArrive) {
  Engine e;
  JoinCounter j(e, 3);
  TimeNs done_at = -1;
  join_waiter(e, j, done_at);
  join_worker(e, j, 10);
  join_worker(e, j, 30);
  join_worker(e, j, 20);
  e.run();
  EXPECT_EQ(done_at, 30);
}

TEST(JoinCounter, ZeroExpectedIsImmediatelyDone) {
  Engine e;
  JoinCounter j(e, 0);
  EXPECT_TRUE(j.is_done());
}

TEST(Deadlock, LiveTasksExposeUnfiredWaits) {
  Engine e;
  auto ev = std::make_unique<OneShot>(e);
  std::vector<TimeNs> log;
  waiter(e, *ev, log);
  e.run();  // queue drains, waiter still suspended
  EXPECT_EQ(e.live_tasks(), 1);
  EXPECT_TRUE(log.empty());
  ev->set();  // release so the OneShot destructor check passes
  e.run();
  EXPECT_EQ(e.live_tasks(), 0);
}

}  // namespace
}  // namespace fcc::sim

// Churn stress tests: thousands of back-to-back FusedOp::spawn() cycles on
// ONE engine, asserting the runtime leaks nothing run-over-run — no flag
// slots, no dangling threshold waiters, no unbounded slab growth — and that
// a warm operator reproduces a fresh engine's timing exactly.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "framework/op_registry.h"
#include "fused/op_runtime.h"
#include "gpu/machine.h"
#include "serve/arrivals.h"
#include "serve/catalog.h"
#include "serve/simulator.h"
#include "shmem/world.h"

namespace fcc {
namespace {

/// Every registered operator that ships a smoke spec (all four built-ins).
std::vector<std::string> smoke_ops() {
  const fw::OpRegistry& reg = fw::OpRegistry::global();
  std::vector<std::string> ops;
  for (const std::string& name : reg.names()) {
    if (reg.at(name).smoke_spec != nullptr) ops.push_back(name);
  }
  return ops;
}

TEST(ServeChurn, RegistryCoversAllFourOperators) {
  const auto ops = smoke_ops();
  ASSERT_GE(ops.size(), 4u);
}

TEST(ServeChurn, SerialRespawnIsLeakFreeAndStable) {
  constexpr int kIters = 300;
  gpu::Machine machine(fw::smoke_machine_config());
  shmem::World world(machine);
  sim::Engine& engine = machine.engine();
  const fw::OpRegistry& reg = fw::OpRegistry::global();

  for (const std::string& name : smoke_ops()) {
    SCOPED_TRACE(name);
    const fw::OpEntry& entry = reg.at(name);
    const fw::OpSpec spec = entry.smoke_spec();

    // Reference duration from a pristine engine.
    TimeNs reference;
    {
      gpu::Machine fresh_machine(fw::smoke_machine_config());
      shmem::World fresh_world(fresh_machine);
      auto fresh_op =
          entry.make(fresh_world, spec, fw::Backend::kFused);
      const auto res = fresh_op->run_to_completion();
      reference = res.end - res.start;
    }

    auto op = entry.make(world, spec, fw::Backend::kFused);
    std::size_t slab_watermark = 0;
    for (int i = 0; i < kIters; ++i) {
      const auto res = op->run_to_completion();
      ASSERT_EQ(res.end - res.start, reference)
          << "iteration " << i << " drifted from the fresh-engine run";
      ASSERT_EQ(engine.live_tasks(), 0) << "iteration " << i;
      ASSERT_EQ(engine.pending(), 0u) << "iteration " << i;
      // The event slab and flag arrays must stop growing once warm: take
      // the watermark after two iterations (first-run allocations), then
      // hold it for the remaining hundreds.
      if (i == 1) slab_watermark = engine.slab_nodes();
      if (i > 1) {
        ASSERT_EQ(engine.slab_nodes(), slab_watermark)
            << "slab grew at iteration " << i;
      }
    }
    for (int pe = 0; pe < world.n_pes(); ++pe) {
      ASSERT_EQ(world.outstanding(pe), 0) << "pe " << pe;
    }
  }
}

TEST(ServeChurn, ConcurrentSpawnChurnAcrossAllOperators) {
  constexpr int kIters = 200;
  gpu::Machine machine(fw::smoke_machine_config());
  shmem::World world(machine);
  sim::Engine& engine = machine.engine();
  const fw::OpRegistry& reg = fw::OpRegistry::global();

  std::vector<std::unique_ptr<fused::FusedOp>> ops;
  for (const std::string& name : smoke_ops()) {
    const fw::OpEntry& entry = reg.at(name);
    ops.push_back(entry.make(world, entry.smoke_spec(), fw::Backend::kFused));
  }

  std::vector<TimeNs> reference;
  std::size_t slab_watermark = 0;
  for (int i = 0; i < kIters; ++i) {
    // All four operators in flight on the machine at once, every cycle.
    for (auto& op : ops) op->spawn();
    engine.run();
    ASSERT_EQ(engine.live_tasks(), 0) << "iteration " << i;

    std::vector<TimeNs> durations;
    for (auto& op : ops) {
      const auto& res = op->result();
      durations.push_back(res.end - res.start);
    }
    if (i == 0) {
      reference = durations;
    } else {
      ASSERT_EQ(durations, reference) << "iteration " << i;
    }
    if (i == 1) slab_watermark = engine.slab_nodes();
    if (i > 1) ASSERT_EQ(engine.slab_nodes(), slab_watermark);
  }
}

TEST(ServeChurn, WarmSimulatorRepeatsAreStableAndLeakFree) {
  gpu::Machine machine(fw::smoke_machine_config());
  shmem::World world(machine);
  sim::Engine& engine = machine.engine();
  auto catalog = serve::default_catalog(machine.num_pes());
  const auto weights = serve::class_weights(catalog);
  serve::Simulator sim(machine, world, std::move(catalog));
  const auto trace = serve::poisson_trace(4e4, 150, 99, weights);

  // 3 runs x 150 requests x multi-op chains on one warm simulator: every
  // operator instance respawns hundreds of times.
  serve::ServeReport first = sim.run(trace);
  const std::size_t slab_watermark = engine.slab_nodes();
  for (int rep = 0; rep < 2; ++rep) {
    const serve::ServeReport again = sim.run(trace);
    ASSERT_EQ(again.records, first.records) << "repeat " << rep;
    ASSERT_EQ(again.overall, first.overall) << "repeat " << rep;
    ASSERT_EQ(engine.live_tasks(), 0);
    ASSERT_EQ(engine.slab_nodes(), slab_watermark)
        << "slab grew on repeat " << rep;
  }
  for (int pe = 0; pe < world.n_pes(); ++pe) {
    ASSERT_EQ(world.outstanding(pe), 0) << "pe " << pe;
  }
}

}  // namespace
}  // namespace fcc

// Baseline collectives: functional correctness + timing sanity.
#include <gtest/gtest.h>

#include <vector>

#include "ccl/communicator.h"
#include "common/rng.h"
#include "gpu/machine.h"
#include "sim/task.h"

namespace fcc::ccl {
namespace {

gpu::Machine::Config four_gpus() {
  gpu::Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = 4;
  return c;
}

gpu::Machine::Config two_nodes() {
  gpu::Machine::Config c;
  c.num_nodes = 2;
  c.gpus_per_node = 1;
  return c;
}

std::vector<PeId> all_pes(gpu::Machine& m) {
  std::vector<PeId> v;
  for (int i = 0; i < m.num_pes(); ++i) v.push_back(i);
  return v;
}

FloatBufs make_bufs(std::vector<std::vector<float>>& storage) {
  FloatBufs b;
  for (auto& s : storage) b.per_rank.emplace_back(s);
  return b;
}

sim::Task run_all_reduce(sim::Engine& e, Communicator& comm,
                         std::int64_t n_elems, FloatBufs bufs,
                         AllReduceAlgo algo, TimeNs& done) {
  co_await comm.all_reduce(n_elems, bufs, algo);
  done = e.now();
}

TEST(AllReduce, SumAcrossFourRanks) {
  for (auto algo : {AllReduceAlgo::kTwoPhaseDirect, AllReduceAlgo::kRing}) {
    gpu::Machine m(four_gpus());
    Communicator comm(m, all_pes(m));
    const std::int64_t n = 64;
    std::vector<std::vector<float>> data(4);
    std::vector<float> expect(static_cast<size_t>(n), 0.0f);
    Rng rng(7);
    for (int r = 0; r < 4; ++r) {
      data[static_cast<size_t>(r)].resize(static_cast<size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        const auto v = static_cast<float>(rng.next_double(-1, 1));
        data[static_cast<size_t>(r)][static_cast<size_t>(i)] = v;
        expect[static_cast<size_t>(i)] += v;
      }
    }
    TimeNs done = 0;
    run_all_reduce(m.engine(), comm, n, make_bufs(data), algo, done);
    m.engine().run();
    EXPECT_GT(done, 0);
    for (int r = 0; r < 4; ++r) {
      for (std::int64_t i = 0; i < n; ++i) {
        EXPECT_NEAR(data[static_cast<size_t>(r)][static_cast<size_t>(i)],
                    expect[static_cast<size_t>(i)], 1e-4);
      }
    }
  }
}

TEST(AllReduce, SingleRankIsFree) {
  gpu::Machine m(four_gpus());
  Communicator comm(m, {0});
  std::vector<std::vector<float>> data(1, std::vector<float>{1.f, 2.f});
  TimeNs done = 0;
  run_all_reduce(m.engine(), comm, 2, make_bufs(data),
                 AllReduceAlgo::kTwoPhaseDirect, done);
  m.engine().run();
  EXPECT_EQ(done, 0);
  EXPECT_EQ(data[0], (std::vector<float>{1.f, 2.f}));
}

TEST(AllReduce, DirectBeatsRingAtSmallSizesOnFullyConnected) {
  // The paper picks the two-phase direct algorithm for fully connected
  // GPUs [32]; the ring pays 2(N-1) latency hops.
  TimeNs t_direct = 0, t_ring = 0;
  {
    gpu::Machine m(four_gpus());
    Communicator comm(m, all_pes(m));
    run_all_reduce(m.engine(), comm, 16 * 1024, FloatBufs{},
                   AllReduceAlgo::kTwoPhaseDirect, t_direct);
    m.engine().run();
  }
  {
    gpu::Machine m(four_gpus());
    Communicator comm(m, all_pes(m));
    run_all_reduce(m.engine(), comm, 16 * 1024, FloatBufs{},
                   AllReduceAlgo::kRing, t_ring);
    m.engine().run();
  }
  EXPECT_LT(t_direct, t_ring);
}

sim::Task run_all_to_all(sim::Engine& e, Communicator& comm,
                         std::int64_t chunk, FloatBufs send, FloatBufs recv,
                         TimeNs& done) {
  co_await comm.all_to_all(chunk, std::move(send), std::move(recv));
  done = e.now();
}

TEST(AllToAll, PermutesChunksSourceMajor) {
  gpu::Machine m(four_gpus());
  Communicator comm(m, all_pes(m));
  const std::int64_t chunk = 8;
  std::vector<std::vector<float>> send(4), recv(4);
  for (int r = 0; r < 4; ++r) {
    send[static_cast<size_t>(r)].resize(static_cast<size_t>(4 * chunk));
    recv[static_cast<size_t>(r)].assign(static_cast<size_t>(4 * chunk), -1.f);
    for (int d = 0; d < 4; ++d) {
      for (int i = 0; i < chunk; ++i) {
        // Tag: source*100 + destination*10 + element
        send[static_cast<size_t>(r)][static_cast<size_t>(d * chunk + i)] =
            static_cast<float>(r * 100 + d * 10 + i % 10);
      }
    }
  }
  TimeNs done = 0;
  run_all_to_all(m.engine(), comm, chunk, make_bufs(send), make_bufs(recv),
                 done);
  m.engine().run();
  for (int d = 0; d < 4; ++d) {
    for (int s = 0; s < 4; ++s) {
      for (int i = 0; i < chunk; ++i) {
        EXPECT_FLOAT_EQ(
            recv[static_cast<size_t>(d)][static_cast<size_t>(s * chunk + i)],
            static_cast<float>(s * 100 + d * 10 + i % 10));
      }
    }
  }
  EXPECT_GT(done, 0);
}

TEST(AllToAll, InterNodeRidesNic) {
  gpu::Machine m(two_nodes());
  Communicator comm(m, all_pes(m));
  TimeNs done = 0;
  const std::int64_t chunk = 1 << 18;  // 1 MB chunks
  run_all_to_all(m.engine(), comm, chunk, FloatBufs{}, FloatBufs{}, done);
  m.engine().run();
  // One remote chunk each way: >= wire serialization of 1 MB at 20 B/ns.
  EXPECT_GE(done, static_cast<TimeNs>((chunk * 4) / 20.0));
  EXPECT_GT(m.nic(0).messages(), 0);
}

sim::Task run_reduce_scatter(sim::Engine& e, Communicator& comm,
                             std::int64_t chunk, FloatBufs bufs,
                             TimeNs& done) {
  co_await comm.reduce_scatter(chunk, std::move(bufs));
  done = e.now();
}

TEST(ReduceScatter, EachRankOwnsReducedChunk) {
  gpu::Machine m(four_gpus());
  Communicator comm(m, all_pes(m));
  const std::int64_t chunk = 4;
  std::vector<std::vector<float>> data(4);
  for (int r = 0; r < 4; ++r) {
    data[static_cast<size_t>(r)].resize(static_cast<size_t>(4 * chunk));
    for (int c = 0; c < 4; ++c) {
      for (int i = 0; i < chunk; ++i) {
        data[static_cast<size_t>(r)][static_cast<size_t>(c * chunk + i)] =
            static_cast<float>(r + 1);  // rank-constant
      }
    }
  }
  TimeNs done = 0;
  run_reduce_scatter(m.engine(), comm, chunk, make_bufs(data), done);
  m.engine().run();
  // Sum over ranks of (r+1) = 10 everywhere.
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < chunk; ++i) {
      EXPECT_FLOAT_EQ(data[static_cast<size_t>(r)][static_cast<size_t>(i)],
                      10.0f);
    }
  }
}

sim::Task run_all_gather(sim::Engine& e, Communicator& comm,
                         std::int64_t chunk, FloatBufs bufs, TimeNs& done) {
  co_await comm.all_gather(chunk, std::move(bufs));
  done = e.now();
}

TEST(AllGather, ReplicatesEveryChunkEverywhere) {
  gpu::Machine m(four_gpus());
  Communicator comm(m, all_pes(m));
  const std::int64_t chunk = 4;
  std::vector<std::vector<float>> data(4);
  for (int r = 0; r < 4; ++r) {
    data[static_cast<size_t>(r)].assign(static_cast<size_t>(4 * chunk), 0.f);
    for (int i = 0; i < chunk; ++i) {
      data[static_cast<size_t>(r)][static_cast<size_t>(r * chunk + i)] =
          static_cast<float>(r + 1);
    }
  }
  TimeNs done = 0;
  run_all_gather(m.engine(), comm, chunk, make_bufs(data), done);
  m.engine().run();
  for (int r = 0; r < 4; ++r) {
    for (int src = 0; src < 4; ++src) {
      for (int i = 0; i < chunk; ++i) {
        EXPECT_FLOAT_EQ(
            data[static_cast<size_t>(r)][static_cast<size_t>(src * chunk + i)],
            static_cast<float>(src + 1));
      }
    }
  }
}

sim::Task run_broadcast(sim::Engine& e, Communicator& comm, std::int64_t n,
                        int root, FloatBufs bufs, TimeNs& done) {
  co_await comm.broadcast(n, root, std::move(bufs));
  done = e.now();
}

TEST(Broadcast, RootValueEverywhere) {
  gpu::Machine m(four_gpus());
  Communicator comm(m, all_pes(m));
  std::vector<std::vector<float>> data(4, std::vector<float>(8, 0.f));
  for (int i = 0; i < 8; ++i) data[2][static_cast<size_t>(i)] = 42.0f;
  TimeNs done = 0;
  run_broadcast(m.engine(), comm, 8, 2, make_bufs(data), done);
  m.engine().run();
  for (int r = 0; r < 4; ++r) {
    EXPECT_FLOAT_EQ(data[static_cast<size_t>(r)][7], 42.0f);
  }
}

TEST(AllReduce, TwoPhaseScalesWithMessageSize) {
  gpu::Machine m(four_gpus());
  Communicator comm(m, all_pes(m));
  TimeNs t_small = 0, t_big = 0;
  run_all_reduce(m.engine(), comm, 1 << 10, FloatBufs{},
                 AllReduceAlgo::kTwoPhaseDirect, t_small);
  m.engine().run();
  gpu::Machine m2(four_gpus());
  Communicator comm2(m2, all_pes(m2));
  run_all_reduce(m2.engine(), comm2, 1 << 22, FloatBufs{},
                 AllReduceAlgo::kTwoPhaseDirect, t_big);
  m2.engine().run();
  EXPECT_GT(t_big, 4 * t_small);
}

}  // namespace
}  // namespace fcc::ccl

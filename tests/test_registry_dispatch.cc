// Global registry dispatch: the self-registered built-in operators, the
// registry-wide fused-vs-baseline sweep, and the extension point — a new
// operator registered by this TU alone and dispatched via Session::run
// without touching any framework file.
#include <gtest/gtest.h>

#include <algorithm>

#include "framework/session.h"

namespace fcc::fw {
namespace {

// ---------------------------------------------------------------------------
// A trivial extra operator, registered entirely from this test TU.
// ---------------------------------------------------------------------------

struct NullOpConfig {
  TimeNs fused_ns = 500;
  TimeNs baseline_ns = 2000;
};

class NullOp final : public fused::FusedOp {
 public:
  NullOp(shmem::World& world, TimeNs cost, const char* name)
      : FusedOp(world), cost_(cost), name_(name) {}

  const char* name() const override { return name_; }
  gpu::KernelResources resources() const override { return {}; }

  sim::Co run() override {
    begin_run(world_.n_pes());
    co_await sim::delay(engine(), cost_);
    finish_run_uniform();
  }

 private:
  TimeNs cost_;
  const char* name_;
};

const OpRegistrar null_op_registrar{{
    .name = "test::null_op",
    .replaces = "(nothing — extension-point smoke test)",
    .make =
        [](shmem::World& world, const OpSpec& spec, Backend backend)
        -> std::unique_ptr<fused::FusedOp> {
      const auto& cfg = spec_config<NullOpConfig>(spec);
      if (backend == Backend::kFused) {
        return std::make_unique<NullOp>(world, cfg.fused_ns, "fused_null_op");
      }
      return std::make_unique<NullOp>(world, cfg.baseline_ns,
                                      "baseline_null_op");
    },
    .smoke_spec = [] { return make_spec("test::null_op", NullOpConfig{}); },
}};

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

TEST(GlobalRegistry, BuiltinOpsSelfRegister) {
  auto& reg = OpRegistry::global();
  EXPECT_TRUE(reg.contains("fcc::embedding_a2a"));
  EXPECT_TRUE(reg.contains("fcc::gemv_allreduce"));
  EXPECT_TRUE(reg.contains("fcc::gemm_a2a"));
  EXPECT_TRUE(reg.contains("fcc::moe_dispatch"));
  const auto names = reg.names();
  EXPECT_GE(names.size(), 4u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(GlobalRegistry, UnknownNameThrows) {
  Session s(smoke_machine_config());
  EXPECT_THROW(s.run(make_spec("fcc::no_such_op", 0), Backend::kFused),
               std::logic_error);
}

TEST(GlobalRegistry, UnknownNameErrorListsRegisteredOpsSorted) {
  Session s(smoke_machine_config());
  try {
    s.run(make_spec("fcc::no_such_op", 0), Backend::kFused);
    FAIL() << "expected unknown-op error";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fcc::no_such_op"), std::string::npos) << msg;
    // Every built-in appears, in sorted order.
    const std::vector<std::string> builtins = {
        "fcc::embedding_a2a", "fcc::gemm_a2a", "fcc::gemv_allreduce",
        "fcc::moe_dispatch"};
    std::size_t prev = 0;
    for (const auto& name : builtins) {
      const auto pos = msg.find(name);
      ASSERT_NE(pos, std::string::npos) << name << " missing from: " << msg;
      EXPECT_GT(pos, prev) << msg;
      prev = pos;
    }
  }
}

TEST(GlobalRegistry, DuplicateRegistrationThrows) {
  auto& reg = OpRegistry::global();
  ASSERT_TRUE(reg.contains("fcc::gemv_allreduce"));
  OpEntry dup = reg.at("fcc::gemv_allreduce");
  EXPECT_THROW(reg.register_op(std::move(dup)), std::logic_error);
}

// The registry-wide sweep: every registered op (the three built-ins plus
// anything future TUs add) must provide a smoke spec and beat its own
// baseline on the smoke machine.
TEST(GlobalRegistry, FusedBeatsBaselineForEveryRegisteredOp) {
  const auto names = OpRegistry::global().names();
  ASSERT_GE(names.size(), 3u);
  for (const auto& name : names) {
    const auto& entry = OpRegistry::global().at(name);
    ASSERT_TRUE(entry.smoke_spec != nullptr) << name;
    const auto spec = entry.smoke_spec();
    EXPECT_EQ(spec.name, name);

    Session sf(smoke_machine_config());
    const auto fused = sf.run(spec, Backend::kFused);
    Session sb(smoke_machine_config());
    const auto baseline = sb.run(spec, Backend::kBaseline);

    EXPECT_GT(fused.duration(), 0) << name;
    EXPECT_GT(baseline.duration(), 0) << name;
    EXPECT_LT(fused.duration(), baseline.duration()) << name;
  }
}

// Extension point: the trivial op above went in through OpRegistrar alone —
// no framework/session.h change — and dispatches like any built-in.
TEST(GlobalRegistry, NewOpRunsViaSessionWithoutFrameworkChanges) {
  ASSERT_TRUE(OpRegistry::global().contains("test::null_op"));

  NullOpConfig cfg;
  cfg.fused_ns = 700;
  cfg.baseline_ns = 2100;

  Session s(smoke_machine_config());
  const auto rf = s.run(make_spec("test::null_op", cfg), Backend::kFused);
  EXPECT_EQ(rf.duration(), 700);
  EXPECT_EQ(rf.pe_end.size(), static_cast<std::size_t>(kSmokePes));
  EXPECT_DOUBLE_EQ(rf.skew(), 0.0);

  const auto rb = s.run(make_spec("test::null_op", cfg), Backend::kBaseline);
  EXPECT_EQ(rb.duration(), 2100);
  EXPECT_LT(rf.duration(), rb.duration());
}

}  // namespace
}  // namespace fcc::fw

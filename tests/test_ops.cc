// Compute ops: embedding pooling, GEMV/GEMM tiling vs references, costs.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.h"
#include "ops/cost_model.h"
#include "ops/elementwise.h"
#include "ops/embedding.h"
#include "ops/gemm.h"
#include "ops/gemv.h"

namespace fcc::ops {
namespace {

TEST(Embedding, PoolSumMatchesManualComputation) {
  EmbeddingConfig cfg;
  cfg.num_tables = 1;
  cfg.rows_per_table = 4;
  cfg.dim = 2;
  cfg.pooling = 3;
  Rng rng(1);
  auto tables = EmbeddingTables::random(cfg, rng);
  auto batch = EmbeddingBatch::uniform(cfg, /*batch=*/2, rng);

  std::vector<float> out(2);
  pool_reference(cfg, tables, batch, 0, 0, out);

  const auto w = tables.table(0);
  const auto ix = batch.table_indices(0);
  for (int d = 0; d < 2; ++d) {
    float expect = 0;
    for (int j = 0; j < 3; ++j) {
      expect += w[static_cast<size_t>(ix[static_cast<size_t>(j)]) * 2 +
                  static_cast<size_t>(d)];
    }
    EXPECT_FLOAT_EQ(out[static_cast<size_t>(d)], expect);
  }
}

TEST(Embedding, MeanModeDividesByPooling) {
  EmbeddingConfig cfg;
  cfg.num_tables = 1;
  cfg.rows_per_table = 8;
  cfg.dim = 4;
  cfg.pooling = 4;
  Rng rng(2);
  auto tables = EmbeddingTables::random(cfg, rng);
  auto batch = EmbeddingBatch::uniform(cfg, 1, rng);

  std::vector<float> sum_out(4), mean_out(4);
  cfg.mode = PoolingMode::kSum;
  pool_reference(cfg, tables, batch, 0, 0, sum_out);
  cfg.mode = PoolingMode::kMean;
  pool_reference(cfg, tables, batch, 0, 0, mean_out);
  for (int d = 0; d < 4; ++d) {
    EXPECT_FLOAT_EQ(mean_out[static_cast<size_t>(d)],
                    sum_out[static_cast<size_t>(d)] / 4.0f);
  }
}

TEST(Embedding, PoolAllLaysOutBatchMajorTableMinor) {
  EmbeddingConfig cfg;
  cfg.num_tables = 3;
  cfg.rows_per_table = 16;
  cfg.dim = 4;
  cfg.pooling = 2;
  Rng rng(3);
  auto tables = EmbeddingTables::random(cfg, rng);
  auto batch = EmbeddingBatch::uniform(cfg, 5, rng);

  auto all = pool_all_reference(cfg, tables, batch);
  ASSERT_EQ(all.size(), 5u * 3u * 4u);
  std::vector<float> one(4);
  pool_reference(cfg, tables, batch, 2, 4, one);
  for (int d = 0; d < 4; ++d) {
    EXPECT_FLOAT_EQ(all[(4u * 3u + 2u) * 4u + static_cast<size_t>(d)],
                    one[static_cast<size_t>(d)]);
  }
}

TEST(Embedding, ZipfBatchSkewsIndexDistribution) {
  EmbeddingConfig cfg;
  cfg.num_tables = 1;
  cfg.rows_per_table = 1000;
  cfg.pooling = 8;
  Rng rng(4);
  auto batch = EmbeddingBatch::zipf(cfg, 256, 0.95, rng);
  const auto ix = batch.table_indices(0);
  int head = 0;
  for (auto i : ix) head += (i < 10);
  EXPECT_GT(head, static_cast<int>(ix.size()) / 20);
}

TEST(Gemv, TilesReassembleToReference) {
  GemvShape s;
  s.m = 37;
  s.k = 19;
  s.tile_rows = 8;
  Rng rng(5);
  auto w = random_vector(static_cast<size_t>(s.m) * s.k, rng);
  auto x = random_vector(static_cast<size_t>(s.k), rng);
  const auto ref = gemv_reference(s, w, x);

  std::vector<float> assembled(static_cast<size_t>(s.m));
  for (int t = 0; t < s.num_tiles(); ++t) {
    std::vector<float> tile_out(static_cast<size_t>(s.tile_rows));
    gemv_tile(s, w, x, t, tile_out);
    for (int r = s.tile_begin(t); r < s.tile_end(t); ++r) {
      assembled[static_cast<size_t>(r)] =
          tile_out[static_cast<size_t>(r - s.tile_begin(t))];
    }
  }
  for (int r = 0; r < s.m; ++r) {
    EXPECT_NEAR(assembled[static_cast<size_t>(r)], ref[static_cast<size_t>(r)],
                1e-4);
  }
}

TEST(Gemv, TileCountCoversRaggedEdge) {
  GemvShape s;
  s.m = 33;
  s.k = 1;
  s.tile_rows = 16;
  EXPECT_EQ(s.num_tiles(), 3);
  EXPECT_EQ(s.tile_end(2), 33);
}

TEST(Gemm, TilesReassembleToReference) {
  GemmShape s;
  s.m = 20;
  s.n = 14;
  s.k = 9;
  s.block_m = 8;
  s.block_n = 8;
  Rng rng(6);
  auto a = random_vector(static_cast<size_t>(s.m) * s.k, rng);
  auto b = random_vector(static_cast<size_t>(s.k) * s.n, rng);
  const auto ref = gemm_reference(s, a, b);

  std::vector<float> assembled(static_cast<size_t>(s.m) * s.n, -1.0f);
  for (int t = 0; t < s.num_tiles(); ++t) {
    const int rows = s.row_end(t) - s.row_begin(t);
    const int cols = s.col_end(t) - s.col_begin(t);
    std::vector<float> tile(static_cast<size_t>(rows) * cols);
    gemm_tile(s, a, b, t, tile);
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < cols; ++j) {
        assembled[static_cast<size_t>(s.row_begin(t) + i) * s.n +
                  static_cast<size_t>(s.col_begin(t) + j)] =
            tile[static_cast<size_t>(i) * cols + j];
      }
    }
  }
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(assembled[i], ref[i], 1e-3);
  }
}

TEST(Gemm, TileGridGeometry) {
  GemmShape s;
  s.m = 128;
  s.n = 96;
  s.k = 4;
  s.block_m = 64;
  s.block_n = 64;
  EXPECT_EQ(s.tiles_m(), 2);
  EXPECT_EQ(s.tiles_n(), 2);
  EXPECT_EQ(s.num_tiles(), 4);
  EXPECT_EQ(s.col_end(1), 96);  // ragged right edge
}

TEST(Elementwise, ReluGeluAddScale) {
  std::vector<float> x{-1.0f, 0.0f, 2.0f};
  relu_inplace(x);
  EXPECT_EQ(x, (std::vector<float>{0.0f, 0.0f, 2.0f}));

  std::vector<float> g{0.0f, 100.0f};
  gelu_inplace(g);
  EXPECT_NEAR(g[0], 0.0f, 1e-6);
  EXPECT_NEAR(g[1], 100.0f, 1e-3);

  std::vector<float> a{1.0f, 2.0f};
  add_inplace(a, std::vector<float>{10.0f, 20.0f});
  EXPECT_EQ(a, (std::vector<float>{11.0f, 22.0f}));
  scale_inplace(a, 0.5f);
  EXPECT_EQ(a, (std::vector<float>{5.5f, 11.0f}));
}

TEST(CostModel, EmbeddingCostScalesWithPoolingAndDim) {
  const auto small = embedding_wg_cost(32, 64, true, kBaselineCurve);
  const auto big = embedding_wg_cost(64, 64, true, kBaselineCurve);
  EXPECT_GT(big.hbm_bytes, small.hbm_bytes);
  EXPECT_NEAR(static_cast<double>(big.hbm_bytes) / small.hbm_bytes, 2.0, 0.1);
}

TEST(CostModel, ZeroCopySkipsLocalWrite) {
  const auto staged = embedding_wg_cost(64, 256, true, kBaselineCurve);
  const auto zero_copy = embedding_wg_cost(64, 256, false, kBaselineCurve);
  EXPECT_EQ(staged.hbm_bytes - zero_copy.hbm_bytes, 256 * 4);
}

TEST(CostModel, GemmTileIsAluBoundForTypicalShapes) {
  const auto c = gemm_tile_cost(64, 64, 1024, kTunedGemmEfficiency,
                                kBaselineCurve);
  // flops/bytes ratio must exceed the machine balance point so GEMM lands
  // ALU-bound (22600 flops/ns vs 1638 B/ns -> ~13.8 flops per byte).
  EXPECT_GT(c.flops / static_cast<double>(c.hbm_bytes), 13.8);
}

}  // namespace
}  // namespace fcc::ops

// Tile DSL: builder validation, plain GEMM execution, comm statements.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "gpu/machine.h"
#include "ops/gemv.h"
#include "shmem/world.h"
#include "sim/task.h"
#include "triton/tile_lang.h"

namespace fcc::triton {
namespace {

gpu::Machine::Config four_gpus() {
  gpu::Machine::Config c;
  c.num_nodes = 1;
  c.gpus_per_node = 4;
  return c;
}

ops::GemmShape small_shape() {
  ops::GemmShape s;
  s.m = 32;
  s.n = 24;
  s.k = 16;
  s.block_m = 8;
  s.block_n = 8;
  return s;
}

sim::Task launch_driver(sim::Engine&, TileKernel& k,
                        const TileKernel::LaunchConfig& lc, bool& done) {
  co_await k.launch(lc);
  done = true;
}

TEST(TileKernel, ValidateRejectsDotWithoutPanels) {
  TileKernel k("bad", small_shape(), 0.5);
  k.dot();
  EXPECT_THROW(k.validate(), std::logic_error);
}

TEST(TileKernel, ValidateRejectsStoreBeforeDot) {
  TileKernel k("bad", small_shape(), 0.5);
  k.load_a().load_b().store_c_local({});
  EXPECT_THROW(k.validate(), std::logic_error);
}

TEST(TileKernel, ValidateRejectsEmptyKernel) {
  TileKernel k("empty", small_shape(), 0.5);
  k.load_a().load_b();
  EXPECT_THROW(k.validate(), std::logic_error);
}

TEST(TileKernel, CommStatementsCostShmemRegisters) {
  TileKernel plain("plain", small_shape(), 0.5);
  plain.load_a().load_b().dot().store_c_local({});
  TileKernel comm("comm", small_shape(), 0.5);
  comm.load_a().load_b().dot().put_c_remote(
      [](const TileKernel::Ctx&) { return 0; }, {});
  EXPECT_LT(comm.resources().vgprs_per_thread, 256);
  EXPECT_GT(comm.resources().vgprs_per_thread,
            plain.resources().vgprs_per_thread);
  EXPECT_TRUE(comm.uses_comm());
  EXPECT_FALSE(plain.uses_comm());
}

TEST(TileKernel, PlainGemmMatchesReference) {
  gpu::Machine m(four_gpus());
  shmem::World w(m);
  const auto shape = small_shape();
  Rng rng(51);
  auto a = ops::random_vector(
      static_cast<size_t>(shape.m) * static_cast<size_t>(shape.k), rng);
  auto b = ops::random_vector(
      static_cast<size_t>(shape.k) * static_cast<size_t>(shape.n), rng);
  std::vector<float> c(static_cast<size_t>(shape.m) *
                           static_cast<size_t>(shape.n),
                       0.0f);

  TileKernel k("gemm", shape, 0.7);
  k.load_a().load_b().dot().store_c_local(
      [&c, shape](const TileKernel::Ctx& ctx, const std::vector<float>& tile) {
        const auto& sh = *ctx.shape;
        const int cols = sh.col_end(ctx.pid) - sh.col_begin(ctx.pid);
        for (int r = sh.row_begin(ctx.pid); r < sh.row_end(ctx.pid); ++r) {
          for (int j = 0; j < cols; ++j) {
            c[static_cast<size_t>(r) * shape.n +
              static_cast<size_t>(sh.col_begin(ctx.pid) + j)] =
                tile[static_cast<size_t>(r - sh.row_begin(ctx.pid)) * cols +
                     static_cast<size_t>(j)];
          }
        }
      });

  TileKernel::LaunchConfig lc;
  lc.world = &w;
  lc.pe = 0;
  lc.functional = true;
  lc.a = a;
  lc.b = b;
  bool done = false;
  launch_driver(m.engine(), k, lc, done);
  m.engine().run();
  EXPECT_TRUE(done);

  const auto ref = ops::gemm_reference(shape, a, b);
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], 1e-3);
  }
}

TEST(TileKernel, PutRemoteDeliversTilesToPeer) {
  gpu::Machine m(four_gpus());
  shmem::World w(m);
  const auto shape = small_shape();
  Rng rng(52);
  auto a = ops::random_vector(
      static_cast<size_t>(shape.m) * static_cast<size_t>(shape.k), rng);
  auto b = ops::random_vector(
      static_cast<size_t>(shape.k) * static_cast<size_t>(shape.n), rng);
  std::vector<float> received(static_cast<size_t>(shape.m) *
                                  static_cast<size_t>(shape.n),
                              -999.0f);

  shmem::FlagArray flags(m.engine(), m.num_pes(), 1);
  TileKernel k("gemm_put", shape, 0.7);
  k.load_a().load_b().dot();
  k.put_c_remote(
      [](const TileKernel::Ctx&) { return 2; },  // everything to GPU 2
      [&received, shape](const TileKernel::Ctx& ctx,
                         const std::vector<float>& tile) {
        const auto& sh = *ctx.shape;
        const int cols = sh.col_end(ctx.pid) - sh.col_begin(ctx.pid);
        for (int r = sh.row_begin(ctx.pid); r < sh.row_end(ctx.pid); ++r) {
          for (int j = 0; j < cols; ++j) {
            received[static_cast<size_t>(r) * shape.n +
                     static_cast<size_t>(sh.col_begin(ctx.pid) + j)] =
                tile[static_cast<size_t>(r - sh.row_begin(ctx.pid)) * cols +
                     static_cast<size_t>(j)];
          }
        }
      });
  k.fence();
  k.atomic_add_remote(&flags, [](const TileKernel::Ctx&) { return 2; },
                      [](const TileKernel::Ctx&) { return 0u; });

  TileKernel::LaunchConfig lc;
  lc.world = &w;
  lc.pe = 0;
  lc.functional = true;
  lc.a = a;
  lc.b = b;
  bool done = false;
  launch_driver(m.engine(), k, lc, done);
  m.engine().run();
  EXPECT_TRUE(done);

  const auto ref = ops::gemm_reference(shape, a, b);
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(received[i], ref[i], 1e-3);
  }
  // One counter bump per tile, delivered after the data (FIFO channel).
  EXPECT_EQ(flags.read(2, 0),
            static_cast<std::uint64_t>(shape.num_tiles()));
  EXPECT_GT(m.fabric(0).total_bytes(), 0);
}

TEST(TileKernel, CommAwareSchedulePutsRemoteTilesFirst) {
  // With one slot, the execution order is observable through a local-write
  // trace: remote-destination tiles must all precede local ones.
  gpu::Machine m(four_gpus());
  shmem::World w(m);
  auto shape = small_shape();
  std::vector<int> exec_order;

  TileKernel k("sched", shape, 0.7);
  k.load_a().load_b().dot();
  k.put_c_remote(
      [](const TileKernel::Ctx& ctx) {
        return ctx.pid % 2 == 0 ? 0 : 1;  // even tiles local (pe 0)
      },
      [&exec_order](const TileKernel::Ctx& ctx, const std::vector<float>&) {
        exec_order.push_back(ctx.pid);
      });

  TileKernel::LaunchConfig lc;
  lc.world = &w;
  lc.pe = 0;
  lc.functional = true;
  lc.policy = gpu::SchedulePolicy::kCommAware;
  lc.occupancy_slots_override = 1;
  Rng rng(53);
  auto a = ops::random_vector(
      static_cast<size_t>(shape.m) * static_cast<size_t>(shape.k), rng);
  auto b = ops::random_vector(
      static_cast<size_t>(shape.k) * static_cast<size_t>(shape.n), rng);
  lc.a = a;
  lc.b = b;
  bool done = false;
  launch_driver(m.engine(), k, lc, done);
  m.engine().run();

  // Local (even) tiles are written at compute time, so with remote-first
  // scheduling all remote (odd) deliveries happen after... actually local
  // writes happen during the local half of the loop; check that the first
  // local write comes after every remote tile has been *computed*: the
  // exec_order of local tiles must be the tail of the sequence.
  std::vector<int> local_positions;
  for (size_t i = 0; i < exec_order.size(); ++i) {
    if (exec_order[i] % 2 == 0) local_positions.push_back(static_cast<int>(i));
  }
  ASSERT_FALSE(local_positions.empty());
  // All local tiles are written consecutively at the end region: the first
  // local write index must be >= number of remote tiles minus in-flight
  // deliveries; weak but meaningful ordering check:
  EXPECT_GT(local_positions.front(), 0);
}

}  // namespace
}  // namespace fcc::triton

// Framework graph layer: dataflow-derived dependencies, the fused-rewrite
// pass over OpEntry patterns, and GraphExecutor scheduling semantics —
// chain graphs must time byte-identically to sequential Session::run calls
// (golden equivalence, same style as test_sim_determinism), diamond graphs
// must be schedule-order independent, and independent nodes must overlap.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "framework/session.h"
#include "fused/embedding_a2a.h"
#include "fused/gemv_allreduce.h"

namespace fcc::fw {
namespace {

// ---------------------------------------------------------------------------
// Test-local ops: a pure-delay op (no device/fabric contention, so node
// results depend only on start time) and a fusable producer/consumer pair
// declared via the structured `pattern` metadata (the sole rewrite source;
// the free-text `replaces` is documentary and never parsed).
// ---------------------------------------------------------------------------

struct DelayConfig {
  TimeNs fused_ns = 500;
  TimeNs baseline_ns = 2000;
};

class DelayOp final : public fused::FusedOp {
 public:
  DelayOp(shmem::World& world, TimeNs cost, const char* name)
      : FusedOp(world), cost_(cost), name_(name) {}

  const char* name() const override { return name_; }
  gpu::KernelResources resources() const override { return {}; }

  sim::Co run() override {
    begin_run(world_.n_pes());
    co_await sim::delay(engine(), cost_);
    finish_run_uniform();
  }

 private:
  TimeNs cost_;
  const char* name_;
};

OpEntry delay_entry(std::string name) {
  OpEntry e;
  e.name = std::move(name);
  e.make = [](shmem::World& world, const OpSpec& spec,
              Backend backend) -> std::unique_ptr<fused::FusedOp> {
    const auto& cfg = spec_config<DelayConfig>(spec);
    return std::make_unique<DelayOp>(
        world, backend == Backend::kFused ? cfg.fused_ns : cfg.baseline_ns,
        "graphtest_delay");
  };
  return e;
}

const OpRegistrar delay_registrar{delay_entry("graphtest::delay")};

// Fused pair registered with the structured pattern; the replaces string is
// purely documentary and must never be parsed.
OpEntry fused_pair_entry() {
  OpEntry e = delay_entry("graphtest::fused_pair");
  e.pattern = {"graphtest::prod", "graphtest::cons"};
  e.replaces = "graphtest::prod + graphtest::cons (satellite smoke)";
  return e;
}

const OpRegistrar fused_pair_registrar{fused_pair_entry()};

fused::EmbeddingA2AConfig small_emb_config() {
  fused::EmbeddingA2AConfig cfg;
  cfg.map.num_pes = kSmokePes;
  cfg.map.tables_per_pe = 4;
  cfg.map.global_batch = 128;
  cfg.map.dim = 64;
  cfg.map.vectors_per_slice = 8;
  cfg.functional = false;
  return cfg;
}

fused::GemvAllReduceConfig small_gemv_config(int m = 2048) {
  fused::GemvAllReduceConfig cfg;
  cfg.m = m;
  cfg.k_global = 2048;
  cfg.functional = false;
  return cfg;
}

// ---------------------------------------------------------------------------
// Graph construction
// ---------------------------------------------------------------------------

TEST(GraphBuild, DataflowDerivesRawWawWarEdges) {
  Graph g;
  auto t = g.tensor("t");
  auto u = g.tensor("u");
  DelayConfig cfg;
  auto w1 = g.add("graphtest::delay", cfg, {}, {t});        // writes t
  auto r1 = g.add("graphtest::delay", cfg, {t}, {u});       // reads t (RAW)
  auto w2 = g.add("graphtest::delay", cfg, {}, {t});        // rewrites t
  EXPECT_EQ(g.node(w1.v).deps, std::vector<int>{});
  EXPECT_EQ(g.node(r1.v).deps, std::vector<int>{w1.v});
  // The overwriter waits for the previous writer (WAW) and reader (WAR).
  EXPECT_EQ(g.node(w2.v).deps, (std::vector<int>{w1.v, r1.v}));
}

TEST(GraphBuild, ExplicitDepsMustPointBackwards) {
  Graph g;
  DelayConfig cfg;
  auto a = g.add("graphtest::delay", cfg, {}, {});
  auto b = g.add("graphtest::delay", cfg, {}, {});
  g.add_dep(b, a);
  EXPECT_EQ(g.node(b.v).deps, std::vector<int>{a.v});
  EXPECT_THROW(g.add_dep(a, b), std::logic_error);  // forward edge = cycle
  EXPECT_THROW(g.add_dep(a, NodeId{99}), std::logic_error);
}

TEST(GraphBuild, UndeclaredTensorThrows) {
  Graph g;
  DelayConfig cfg;
  EXPECT_THROW(g.add("graphtest::delay", cfg, {TensorId{3}}, {}),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// Fused-rewrite pass
// ---------------------------------------------------------------------------

TEST(RewritePass, CollapsesEmbeddingAllToAllPattern) {
  const auto cfg = small_emb_config();
  Graph g;
  auto indices = g.tensor("indices");
  auto pooled = g.tensor("pooled");
  auto exchanged = g.tensor("exchanged");
  g.add("aten::embedding_bag", cfg, {indices}, {pooled});
  g.add("c10d::all_to_all", {pooled}, {exchanged});

  const int n = rewrite_fused(g);
  EXPECT_EQ(n, 1);
  EXPECT_EQ(g.num_live_nodes(), 1);
  ASSERT_TRUE(g.node(0).fused_away);
  const GraphNode& fused_node = g.node(1);
  EXPECT_EQ(fused_node.spec.name, "fcc::embedding_a2a");
  EXPECT_EQ(fused_node.fused_from,
            "aten::embedding_bag + c10d::all_to_all");
  // Reads the producer's input, writes the consumer's output.
  EXPECT_EQ(fused_node.inputs, std::vector<int>{indices.v});
  EXPECT_EQ(fused_node.outputs, std::vector<int>{exchanged.v});
  EXPECT_EQ(fused_node.deps, std::vector<int>{});
}

// Acceptance criterion: the rewritten pattern graph must produce exactly
// the results of dispatching the fused op directly.
TEST(RewritePass, RewrittenGraphEqualsDirectFusedDispatch) {
  const auto cfg = small_emb_config();
  Graph g;
  auto pooled = g.tensor("pooled");
  auto exchanged = g.tensor("exchanged");
  g.add("aten::embedding_bag", cfg, {}, {pooled});
  g.add("c10d::all_to_all", {pooled}, {exchanged});

  Session graph_session(smoke_machine_config());
  const GraphResult gr = graph_session.run(g, Backend::kFused);
  EXPECT_EQ(gr.rewrites, 1);
  ASSERT_EQ(gr.nodes.size(), 1u);
  EXPECT_EQ(gr.nodes[0].op, "fcc::embedding_a2a");

  Session direct_session(smoke_machine_config());
  const auto direct = direct_session.run(
      make_spec("fcc::embedding_a2a", cfg), Backend::kFused);
  EXPECT_EQ(gr.nodes[0].result, direct);
  EXPECT_EQ(gr.makespan(), direct.duration());
}

TEST(RewritePass, StructuredPatternFusesConfigFreeProducer) {
  // graphtest::fused_pair declares its pattern structurally; the producer
  // is config-free, so the merged node takes the consumer's config (the
  // fallback side of the "compute node carries the config" convention).
  DelayConfig cfg;
  cfg.fused_ns = 777;
  Graph g;
  auto t = g.tensor("t");
  auto u = g.tensor("u");
  g.add("graphtest::prod", {}, {t});
  g.add("graphtest::cons", cfg, {t}, {u});

  Session s(smoke_machine_config());
  const GraphResult gr = s.run(g, Backend::kFused);
  EXPECT_EQ(gr.rewrites, 1);
  ASSERT_EQ(gr.nodes.size(), 1u);
  EXPECT_EQ(gr.nodes[0].op, "graphtest::fused_pair");
  EXPECT_EQ(gr.nodes[0].result.duration(), 777);
}

TEST(RewritePass, RespectsOtherConsumers) {
  // pooled is read by a second node: fusing would retime that reader's
  // input, so the pass must leave the pattern alone...
  const auto cfg = small_emb_config();
  DelayConfig dcfg;
  Graph g;
  auto pooled = g.tensor("pooled");
  auto exchanged = g.tensor("exchanged");
  auto side = g.tensor("side");
  g.add("aten::embedding_bag", cfg, {}, {pooled});
  g.add("c10d::all_to_all", {pooled}, {exchanged});
  g.add("graphtest::delay", dcfg, {pooled}, {side});
  EXPECT_EQ(rewrite_fused(g), 0);
  EXPECT_EQ(g.num_live_nodes(), 3);

  // ...and executing the un-lowered pattern graph reports the unknown
  // pattern node together with every registered op.
  Session s(smoke_machine_config());
  try {
    s.run(g, Backend::kFused);
    FAIL() << "expected unknown-op error";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("aten::embedding_bag"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fcc::embedding_a2a"), std::string::npos) << msg;
    EXPECT_NE(msg.find("graphtest::delay"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------------
// Scheduling determinism (golden-trace style)
// ---------------------------------------------------------------------------

/// Runs the three-op chain sequentially through blocking Session::run.
std::vector<fused::OperatorResult> sequential_chain(Backend backend) {
  Session s(smoke_machine_config());
  std::vector<fused::OperatorResult> out;
  out.push_back(s.run(make_spec("fcc::gemv_allreduce", small_gemv_config()),
                      backend));
  out.push_back(s.run(make_spec("fcc::embedding_a2a", small_emb_config()),
                      backend));
  out.push_back(s.run(
      make_spec("fcc::gemv_allreduce", small_gemv_config(/*m=*/1024)),
      backend));
  return out;
}

/// The same three ops as a single-dependency chain Graph.
GraphResult graph_chain(Backend backend) {
  Graph g;
  auto a = g.tensor("a");
  auto b = g.tensor("b");
  auto c = g.tensor("c");
  g.add("fcc::gemv_allreduce", small_gemv_config(), {}, {a});
  g.add("fcc::embedding_a2a", small_emb_config(), {a}, {b});
  g.add("fcc::gemv_allreduce", small_gemv_config(/*m=*/1024), {b}, {c});
  Session s(smoke_machine_config());
  return s.run(g, backend);
}

TEST(GraphDeterminism, ChainMatchesSequentialRunsExactly) {
  for (Backend backend : {Backend::kFused, Backend::kBaseline}) {
    const auto seq = sequential_chain(backend);
    const GraphResult gr = graph_chain(backend);
    ASSERT_EQ(gr.nodes.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      // Byte-identical OperatorResults: same start/end stamps, same per-PE
      // completion times — graph scheduling added zero timing perturbation.
      EXPECT_EQ(gr.nodes[i].result, seq[i]) << "op " << i;
    }
    // A pure chain has no overlap to exploit: makespan == sum == critical.
    EXPECT_EQ(gr.makespan(), gr.sum_durations());
    EXPECT_EQ(gr.critical_path_ns, gr.sum_durations());
    EXPECT_DOUBLE_EQ(gr.overlap_fraction(), 0.0);
  }
}

TEST(GraphDeterminism, RepeatedGraphRunsAreBitIdentical) {
  const GraphResult a = graph_chain(Backend::kFused);
  const GraphResult b = graph_chain(Backend::kFused);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].result, b.nodes[i].result);
  }
}

/// Diamond over pure-delay ops: A → {B, C} → D, B and C added in either
/// order. Delay ops share no device or fabric state, so per-node results
/// must not depend on the insertion (schedule) order.
GraphResult diamond(bool b_first) {
  DelayConfig a_cfg{.fused_ns = 100, .baseline_ns = 100};
  DelayConfig b_cfg{.fused_ns = 300, .baseline_ns = 300};
  DelayConfig c_cfg{.fused_ns = 500, .baseline_ns = 500};
  DelayConfig d_cfg{.fused_ns = 100, .baseline_ns = 100};
  Graph g;
  auto src = g.tensor("src");
  auto left = g.tensor("left");
  auto right = g.tensor("right");
  auto sink = g.tensor("sink");
  g.add("graphtest::delay", a_cfg, {}, {src}, "A");
  if (b_first) {
    g.add("graphtest::delay", b_cfg, {src}, {left}, "B");
    g.add("graphtest::delay", c_cfg, {src}, {right}, "C");
  } else {
    g.add("graphtest::delay", c_cfg, {src}, {right}, "C");
    g.add("graphtest::delay", b_cfg, {src}, {left}, "B");
  }
  g.add("graphtest::delay", d_cfg, {left, right}, {sink}, "D");
  Session s(smoke_machine_config());
  return s.run(g, Backend::kFused);
}

TEST(GraphDeterminism, DiamondResultsAreScheduleOrderIndependent) {
  const GraphResult bc = diamond(/*b_first=*/true);
  const GraphResult cb = diamond(/*b_first=*/false);
  ASSERT_EQ(bc.nodes.size(), 4u);
  ASSERT_EQ(cb.nodes.size(), 4u);
  for (const auto& node : bc.nodes) {
    // Match by label: node ids differ between the two insertion orders.
    bool found = false;
    for (const auto& other : cb.nodes) {
      if (other.label != node.label) continue;
      EXPECT_EQ(other.result, node.result) << node.label;
      found = true;
    }
    EXPECT_TRUE(found) << node.label;
  }
  // B (300) and C (500) both start when A ends: real inter-op overlap.
  EXPECT_EQ(bc.makespan(), 100 + 500 + 100);
  EXPECT_EQ(bc.critical_path_ns, 100 + 500 + 100);
  EXPECT_EQ(bc.sum_durations(), 100 + 300 + 500 + 100);
  EXPECT_DOUBLE_EQ(bc.overlap_fraction(), 1.0 - 700.0 / 1000.0);
}

TEST(RewritePass, DuplicatePatternDeclarationsThrow) {
  OpRegistry reg;
  OpEntry a = delay_entry("dup::a");
  a.pattern = {"dup::prod", "dup::cons"};
  OpEntry b = delay_entry("dup::b");
  b.pattern = {"dup::prod", "dup::cons"};  // same structured pattern
  reg.register_op(std::move(a));
  reg.register_op(std::move(b));
  Graph g;
  EXPECT_THROW(rewrite_fused(g, reg), std::logic_error);
}

TEST(RewritePass, ReplacesStringIsNeverParsed) {
  // An entry that only documents its lineage via `replaces` — with no
  // structured pattern — must not cause any rewrite: the string is
  // documentary, the parser fallback is gone.
  OpRegistry reg;
  reg.register_op(delay_entry("doc::prod"));
  reg.register_op(delay_entry("doc::cons"));
  OpEntry fused = delay_entry("doc::fused");
  fused.replaces = "doc::prod + doc::cons";
  reg.register_op(std::move(fused));

  DelayConfig cfg;
  Graph g;
  auto t = g.tensor("t");
  auto u = g.tensor("u");
  g.add("doc::prod", cfg, {}, {t});
  g.add("doc::cons", cfg, {t}, {u});
  EXPECT_EQ(rewrite_fused(g, reg), 0);
  EXPECT_EQ(g.num_live_nodes(), 2);
}

// A mis-typed node config must throw catchably from Session::run — the
// executor builds every operator before spawning driver coroutines, whose
// unhandled_exception would otherwise std::terminate the process.
TEST(GraphExecutorApi, MistypedNodeConfigThrowsCatchably) {
  Graph g;
  auto t = g.tensor("t");
  g.add("fcc::gemv_allreduce", /*config=*/42, {}, {t});
  Session s(smoke_machine_config());
  try {
    s.run(g, Backend::kFused);
    FAIL() << "expected SpecTypeError";
  } catch (const std::bad_any_cast& e) {
    EXPECT_NE(std::string(e.what()).find("fcc::gemv_allreduce"),
              std::string::npos)
        << e.what();
  }
}

TEST(GraphExecutorApi, EmptyGraphRunsToEmptyResult) {
  Graph g;
  Session s(smoke_machine_config());
  const GraphResult gr = s.run(g);
  EXPECT_TRUE(gr.nodes.empty());
  EXPECT_EQ(gr.makespan(), 0);
  EXPECT_DOUBLE_EQ(gr.overlap_fraction(), 0.0);
}

TEST(GraphExecutorApi, IndependentNodesOverlapOnBothBackends) {
  DelayConfig cfg;  // fused 500 / baseline 2000
  Graph g;
  g.add("graphtest::delay", cfg, {}, {}, "x");
  g.add("graphtest::delay", cfg, {}, {}, "y");
  for (Backend backend : {Backend::kFused, Backend::kBaseline}) {
    Session s(smoke_machine_config());
    const GraphResult gr = s.run(g, backend);
    const TimeNs each = backend == Backend::kFused ? 500 : 2000;
    EXPECT_EQ(gr.makespan(), each);          // fully overlapped
    EXPECT_EQ(gr.sum_durations(), 2 * each);
    EXPECT_EQ(gr.critical_path_ns, each);
    EXPECT_DOUBLE_EQ(gr.overlap_fraction(), 0.5);
  }
}

}  // namespace
}  // namespace fcc::fw

// Link and NIC models: serialization, latency, FIFO contention.
#include <gtest/gtest.h>

#include "hw/link.h"
#include "hw/nic.h"

namespace fcc::hw {
namespace {

TEST(Link, UncontendedTransferIsBytesOverBandwidthPlusLatency) {
  Link l("l", /*bytes_per_ns=*/10.0, /*latency_ns=*/100);
  // 1000 bytes at 10 B/ns -> 100 ns occupancy + 100 ns latency.
  EXPECT_EQ(l.submit(/*ready=*/0, /*bytes=*/1000), 200);
}

TEST(Link, BackToBackTransfersSerialize) {
  Link l("l", 10.0, 0);
  EXPECT_EQ(l.submit(0, 1000), 100);
  // Submitted at the same time: queues behind the first.
  EXPECT_EQ(l.submit(0, 1000), 200);
  // Submitted later than the horizon: starts immediately.
  EXPECT_EQ(l.submit(500, 1000), 600);
}

TEST(Link, ZeroByteTransferCostsOnlyLatency) {
  Link l("l", 10.0, 42);
  EXPECT_EQ(l.submit(7, 0), 49);
}

TEST(Link, TracksUtilizationStats) {
  Link l("l", 10.0, 0);
  l.submit(0, 1000);
  l.submit(0, 500);
  EXPECT_EQ(l.total_bytes(), 1500);
  EXPECT_EQ(l.busy_ns(), 150);
  EXPECT_EQ(l.transfers(), 2);
}

TEST(Link, GapsDoNotAccumulateBusyTime) {
  Link l("l", 1.0, 0);
  l.submit(0, 10);
  l.submit(100, 10);
  EXPECT_EQ(l.busy_ns(), 20);
}

TEST(Link, ZeroByteTransferAddsNoOccupancy) {
  // Zero-byte delivery is latency-only: the link horizon and busy time
  // must be untouched so later transfers are not pushed back.
  Link l("l", 10.0, 42);
  EXPECT_EQ(l.submit(100, 0), 142);
  EXPECT_EQ(l.busy_ns(), 0);
  EXPECT_EQ(l.next_free(), 100);  // horizon advanced to start, zero width
  // A transfer ready earlier than the zero-byte one's start still queues
  // FIFO but pays no extra serialization from it.
  EXPECT_EQ(l.submit(0, 1000), 100 + 100 + 42);
}

TEST(Link, HorizonIsMonotoneUnderOutOfOrderReadyTimes) {
  // Submissions arrive with out-of-order ready stamps; the FIFO horizon
  // must never move backwards and deliveries must respect issue order.
  Link l("l", 1.0, 0);
  TimeNs prev_free = 0;
  TimeNs prev_done = 0;
  const TimeNs readies[] = {500, 0, 900, 100, 900, 50};
  for (const TimeNs r : readies) {
    const TimeNs done = l.submit(r, 10);
    EXPECT_GE(l.next_free(), prev_free);
    EXPECT_GE(done, prev_done);  // FIFO: later submission, later delivery
    prev_free = l.next_free();
    prev_done = done;
  }
}

TEST(Link, OccupyIntervalRejectsHorizonViolation) {
  Link l("l", 1.0, 0);
  l.occupy_interval(0, 100);
  EXPECT_THROW(l.occupy_interval(50, 120), std::logic_error);  // overlaps
  EXPECT_THROW(l.occupy_interval(200, 150), std::logic_error);  // end < start
}

TEST(Nic, MessageProcessingSerializesBeforeWire) {
  IbSpec spec;
  spec.wire_bytes_per_ns = 20.0;
  spec.wire_latency_ns = 1000;
  spec.per_msg_proc_ns = 250;
  Nic nic("n", spec);
  // proc: [0,250), wire: 2000B/20 = 100ns -> done 350, +1000 latency.
  EXPECT_EQ(nic.post(0, 2000), 1350);
  // Second message: proc [250,500), wire starts max(500, 350)=500.
  EXPECT_EQ(nic.post(0, 2000), 1600);
  EXPECT_EQ(nic.messages(), 2);
}

TEST(Nic, LargeMessagesBoundByWireNotProc) {
  IbSpec spec;
  spec.wire_bytes_per_ns = 20.0;
  spec.wire_latency_ns = 0;
  spec.per_msg_proc_ns = 10;
  Nic nic("n", spec);
  // Two 1 MB messages: wire serialization dominates.
  const TimeNs d1 = nic.post(0, 1 << 20);
  const TimeNs d2 = nic.post(0, 1 << 20);
  EXPECT_NEAR(static_cast<double>(d2 - d1), (1 << 20) / 20.0, 2.0);
}

TEST(Nic, DescriptorProcessorPipelinesWithWire) {
  // Message i+1's descriptor processing overlaps message i's wire time: a
  // stream whose proc and wire costs are equal settles at one stage delay
  // per message, not the two-stage sum.
  IbSpec spec;
  spec.wire_bytes_per_ns = 20.0;
  spec.wire_latency_ns = 0;
  spec.per_msg_proc_ns = 100;
  Nic nic("n", spec);
  const Bytes bytes = 2000;  // wire occupancy = 100 ns = proc time
  const TimeNs d1 = nic.post(0, bytes);  // proc [0,100), wire [100,200)
  EXPECT_EQ(d1, 200);
  TimeNs prev = d1;
  for (int i = 0; i < 4; ++i) {
    const TimeNs d = nic.post(0, bytes);
    EXPECT_EQ(d - prev, 100);  // pipelined: one stage per message
    prev = d;
  }
}

TEST(Nic, ZeroByteMessageStillPaysDescriptorAndLatency) {
  IbSpec spec;
  spec.wire_bytes_per_ns = 20.0;
  spec.wire_latency_ns = 1000;
  spec.per_msg_proc_ns = 250;
  Nic nic("n", spec);
  // Proc [0,250), zero wire occupancy, + wire latency.
  EXPECT_EQ(nic.post(0, 0), 1250);
  EXPECT_EQ(nic.wire().busy_ns(), 0);
}

}  // namespace
}  // namespace fcc::hw

// Trace recorder: span bookkeeping, Chrome JSON shape, ASCII rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.h"

namespace fcc::sim {
namespace {

TEST(Trace, DisabledTraceDropsEverything) {
  Trace t(false);
  t.add_span({"a", "compute", 0, 0, 0, 10});
  t.add_instant({"b", "comm", 0, 0, 5});
  EXPECT_TRUE(t.spans().empty());
  EXPECT_TRUE(t.instants().empty());
}

TEST(Trace, RecordsSpansAndInstants) {
  Trace t;
  t.add_span({"pool", "compute", 1, 2, 100, 200});
  t.add_instant({"put", "comm", 1, 2, 150});
  ASSERT_EQ(t.spans().size(), 1u);
  ASSERT_EQ(t.instants().size(), 1u);
  EXPECT_EQ(t.spans()[0].name, "pool");
  EXPECT_EQ(t.instants()[0].at, 150);
}

TEST(Trace, ChromeJsonIsWellFormedish) {
  Trace t;
  t.add_span({"k\"ernel", "compute", 0, 1, 0, 1000});
  t.add_instant({"flag", "comm", 0, 1, 500});
  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string s = os.str();
  EXPECT_EQ(s.front(), '[');
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(s.find("k\\\"ernel"), std::string::npos);  // escaped quote
}

TEST(Trace, AsciiRendersOneRowPerTrack) {
  Trace t;
  t.add_span({"a", "compute", 0, 0, 0, 50});
  t.add_span({"b", "compute", 0, 1, 50, 100});
  t.add_instant({"p", "comm", 0, 0, 25});
  std::ostringstream os;
  Trace::AsciiOptions opts;
  opts.width = 20;
  t.render_ascii(os, opts);
  const std::string s = os.str();
  // Two track rows plus a header line.
  EXPECT_NE(s.find("p00/t000"), std::string::npos);
  EXPECT_NE(s.find("p00/t001"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);  // instant marker
  EXPECT_NE(s.find('c'), std::string::npos);  // span glyph = category initial
}

TEST(Trace, AsciiEmptyTraceDoesNotCrash) {
  Trace t;
  std::ostringstream os;
  t.render_ascii(os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(Trace, ClearResets) {
  Trace t;
  t.add_span({"a", "c", 0, 0, 0, 1});
  t.clear();
  EXPECT_TRUE(t.spans().empty());
}

}  // namespace
}  // namespace fcc::sim

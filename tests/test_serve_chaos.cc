// Chaos suite: seeded fault schedules driven through the serving layer.
// Faults are ordinary engine events, so (trace seed, chaos seed) fully
// determines every record, counter, and sketch — across fresh simulators,
// across sweep-runner thread counts, and with the no-event FaultPlan
// byte-identical to a run that never heard of faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "gpu/machine.h"
#include "hw/fault.h"
#include "hw/topology.h"
#include "serve/arrivals.h"
#include "serve/catalog.h"
#include "serve/simulator.h"
#include "shmem/world.h"
#include "sweep_runner.h"

namespace fcc::serve {
namespace {

/// Two nodes x four GPUs on a dual-rail fabric: the redundant topology, so
/// chaos can kill a rail and the server keeps answering.
gpu::Machine::Config two_node_dual_rail() {
  gpu::Machine::Config mc;
  mc.num_nodes = 2;
  mc.gpus_per_node = 4;
  mc.topology.kind = hw::TopologySpec::Kind::kMultiRail;
  mc.topology.nic_rails = 2;
  return mc;
}

std::vector<Arrival> chaos_trace(std::uint64_t seed, int n = 80,
                                 double rps = 4e4) {
  const auto weights = class_weights(default_catalog(8));
  return poisson_trace(rps, n, seed, weights);
}

ServeConfig resilient_config() {
  ServeConfig cfg;
  cfg.timeout.slo_factor = 3.0;
  cfg.timeout.max_retries = 1;
  cfg.brownout.enabled = true;
  return cfg;
}

/// Fresh machine + world + simulator with `plan` scheduled as engine
/// events; nullptr plan = the pre-fault code path (no scheduling call).
ServeReport run_chaos(const std::vector<Arrival>& trace,
                      const hw::FaultPlan* plan, const ServeConfig& cfg) {
  gpu::Machine machine(two_node_dual_rail());
  shmem::World world(machine);
  if (plan != nullptr) {
    hw::schedule_fault_plan(machine.engine(), machine.topology(), *plan, 0);
  }
  Simulator sim(machine, world, default_catalog(machine.num_pes()), cfg);
  return sim.run(trace);
}

/// Seeded chaos: the plan is drawn from the machine's own topology, so the
/// whole run is a function of (trace, chaos_seed, cfg).
ServeReport run_seeded_chaos(const std::vector<Arrival>& trace,
                             std::uint64_t chaos_seed,
                             const ServeConfig& cfg) {
  gpu::Machine machine(two_node_dual_rail());
  shmem::World world(machine);
  hw::ChaosSpec spec;
  spec.num_events = 6;
  spec.horizon_ns = 1'500'000;
  const hw::FaultPlan plan =
      hw::make_chaos_plan(machine.topology(), chaos_seed, spec);
  hw::schedule_fault_plan(machine.engine(), machine.topology(), plan, 0);
  Simulator sim(machine, world, default_catalog(machine.num_pes()), cfg);
  return sim.run(trace);
}

TEST(ServeChaos, RerunsAreByteIdentical) {
  const auto trace = chaos_trace(21);
  const ServeConfig cfg = resilient_config();
  const ServeReport r1 = run_seeded_chaos(trace, 77, cfg);
  const ServeReport r2 = run_seeded_chaos(trace, 77, cfg);
  EXPECT_EQ(r1.records, r2.records);
  EXPECT_EQ(r1.per_class, r2.per_class);
  EXPECT_EQ(r1.overall, r2.overall);
  EXPECT_EQ(r1.last_end, r2.last_end);
}

TEST(ServeChaos, NoEventPlanMatchesHealthyRunExactly) {
  // An empty FaultPlan and identity events (derate 1.0, jitter 0, a derate
  // that is repaired before t=0 traffic... i.e. never observed) must leave
  // the healthy fast path bit-for-bit untouched.
  const auto trace = chaos_trace(23);
  ServeConfig cfg;  // defaults: timeouts and brownout off
  const ServeReport healthy = run_chaos(trace, nullptr, cfg);

  const hw::FaultPlan empty = hw::FaultPlan::none();
  const ServeReport with_empty = run_chaos(trace, &empty, cfg);
  EXPECT_EQ(healthy.records, with_empty.records);
  EXPECT_EQ(healthy.per_class, with_empty.per_class);
  EXPECT_EQ(healthy.overall, with_empty.overall);

  gpu::Machine probe(two_node_dual_rail());
  hw::Topology& topo = probe.topology();
  hw::FaultPlan identity;
  hw::FaultEvent ev;
  ev.t = 0;
  ev.kind = hw::FaultKind::kDerate;
  ev.site = topo.fault_site_index("node0.rail0.wire");
  ev.derate = 1.0;
  identity.events.push_back(ev);
  ev.kind = hw::FaultKind::kJitter;
  ev.site = topo.fault_site_index("node1.rail1.wire");
  ev.jitter_ns = 0;
  identity.events.push_back(ev);
  const ServeReport with_identity = run_chaos(trace, &identity, cfg);
  EXPECT_EQ(healthy.records, with_identity.records);
  EXPECT_EQ(healthy.overall, with_identity.overall);
}

TEST(ServeChaos, CountersAreExactUnderFaults) {
  const auto trace = chaos_trace(29, /*n=*/100);
  const ServeReport r = run_seeded_chaos(trace, 91, resilient_config());
  ASSERT_EQ(r.records.size(), trace.size());

  std::int64_t retries = 0, timeouts = 0, shed = 0, rejected = 0,
               completed = 0;
  for (const RequestRecord& rec : r.records) {
    if (rec.attempts > 1) retries += rec.attempts - 1;
    if (rec.shed) {
      ++shed;
      EXPECT_EQ(rec.start, -1);
      EXPECT_EQ(rec.attempts, 0);
    } else if (rec.rejected) {
      ++rejected;
    } else if (rec.timed_out) {
      ++timeouts;
    } else {
      ++completed;
    }
  }
  EXPECT_EQ(r.overall.retries, retries);
  EXPECT_EQ(r.overall.timeouts, timeouts);
  EXPECT_EQ(r.overall.shed, shed);
  EXPECT_EQ(r.overall.rejected, rejected);
  EXPECT_EQ(r.overall.completed, completed);
  EXPECT_EQ(completed + rejected + timeouts + shed,
            static_cast<std::int64_t>(trace.size()));

  // Per-class counters sum to the overall ones.
  std::int64_t cls_completed = 0, cls_retries = 0;
  for (const ClassStats& cs : r.per_class) {
    cls_completed += cs.completed;
    cls_retries += cs.retries;
  }
  EXPECT_EQ(cls_completed, r.overall.completed);
  EXPECT_EQ(cls_retries, r.overall.retries);
}

TEST(ServeChaos, SweepThreadCountDoesNotChangeChaosRecords) {
  setenv("FCC_BENCH_OUT", "/tmp/fcc_test_serve_chaos_out", 1);
  const ServeConfig cfg = resilient_config();
  auto point = [&cfg](int i) {
    const auto trace =
        chaos_trace(3000 + static_cast<std::uint64_t>(i), /*n=*/50);
    return run_seeded_chaos(trace, 500 + static_cast<std::uint64_t>(i), cfg)
        .records;
  };

  setenv("FCC_SWEEP_THREADS", "1", 1);
  const auto serial = fccbench::run_sweep<std::vector<RequestRecord>>(
      "serve_chaos_serial", 4, point);
  setenv("FCC_SWEEP_THREADS", "4", 1);
  const auto parallel = fccbench::run_sweep<std::vector<RequestRecord>>(
      "serve_chaos_parallel", 4, point);
  unsetenv("FCC_SWEEP_THREADS");
  unsetenv("FCC_BENCH_OUT");

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sweep point " << i;
  }
}

TEST(ServeChaos, ImpossibleDeadlineExhaustsRetryBudget) {
  const auto trace = chaos_trace(31, /*n=*/24);
  ServeConfig cfg;
  cfg.timeout.slo_factor = 1e-6;  // deadline ~= arrival: nothing can make it
  cfg.timeout.max_retries = 2;
  const ServeReport r = run_chaos(trace, nullptr, cfg);
  EXPECT_EQ(r.overall.completed, 0);
  EXPECT_GT(r.overall.timeouts, 0);
  for (const RequestRecord& rec : r.records) {
    if (rec.rejected) continue;
    EXPECT_TRUE(rec.timed_out);
    EXPECT_EQ(rec.attempts, 1 + cfg.timeout.max_retries);
  }
  EXPECT_EQ(r.overall.retries,
            (r.overall.timeouts) * cfg.timeout.max_retries);
}

TEST(ServeChaos, GenerousDeadlineNeverTimesOutOnHealthyFabric) {
  const auto trace = chaos_trace(37, /*n=*/40);
  ServeConfig cfg;
  cfg.timeout.slo_factor = 1e6;
  const ServeReport r = run_chaos(trace, nullptr, cfg);
  EXPECT_EQ(r.overall.timeouts, 0);
  EXPECT_EQ(r.overall.retries, 0);
  for (const RequestRecord& rec : r.records) {
    EXPECT_FALSE(rec.timed_out);
    if (!rec.rejected) {
      EXPECT_EQ(rec.attempts, 1);
    }
  }
}

TEST(ServeChaos, BrownoutShedsUnderDerateAndRecovers) {
  // Calibrate healthy, crush both rail wires mid-trace, repair later. The
  // service-time EMA must drift past the brownout threshold (shedding new
  // arrivals) and the run must still complete deterministically.
  const auto trace = chaos_trace(41, /*n=*/160, /*rps=*/3e4);
  ServeConfig cfg;
  cfg.timeout.slo_factor = 0.0;  // isolate the brownout machinery
  cfg.brownout.enabled = true;
  cfg.brownout.drift_factor = 1.5;
  cfg.brownout.baseline_batches = 2;

  gpu::Machine probe(two_node_dual_rail());
  hw::Topology& ptopo = probe.topology();
  hw::FaultPlan plan;
  for (const char* site : {"node0.rail0.wire", "node0.rail1.wire",
                           "node1.rail0.wire", "node1.rail1.wire"}) {
    hw::FaultEvent ev;
    ev.t = 600'000;
    ev.kind = hw::FaultKind::kDerate;
    ev.site = ptopo.fault_site_index(site);
    ev.derate = 0.02;
    ASSERT_GE(ev.site, 0) << site;
    plan.events.push_back(ev);
    ev.t = 3'500'000;
    ev.kind = hw::FaultKind::kRepair;
    plan.events.push_back(ev);
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const hw::FaultEvent& a, const hw::FaultEvent& b) {
              return a.t < b.t;
            });

  const ServeReport r1 = run_chaos(trace, &plan, cfg);
  EXPECT_GT(r1.overall.shed, 0);
  EXPECT_GT(r1.overall.completed, 0);
  // Shedding is admission-side: shed requests never occupy a lane.
  for (const RequestRecord& rec : r1.records) {
    if (rec.shed) {
      EXPECT_EQ(rec.batch_size, 0);
    }
  }
  const ServeReport r2 = run_chaos(trace, &plan, cfg);
  EXPECT_EQ(r1.records, r2.records);
  EXPECT_EQ(r1.overall, r2.overall);
}

TEST(ServeChaos, ZeroCapacityQueueRejectsEveryRequest) {
  const auto trace = chaos_trace(43, /*n=*/30);
  ServeConfig cfg;
  cfg.policy.queue_capacity = 0;
  const ServeReport r = run_chaos(trace, nullptr, cfg);
  EXPECT_EQ(r.overall.completed, 0);
  EXPECT_EQ(r.overall.rejected, static_cast<std::int64_t>(trace.size()));
  for (const RequestRecord& rec : r.records) {
    EXPECT_TRUE(rec.rejected);
    EXPECT_EQ(rec.start, -1);
  }
}

}  // namespace
}  // namespace fcc::serve

// Transformer token-phase decode with row-parallel MLP layers, on the
// Graph API.
//
// Auto-regressive decode runs one token at a time, so each MLP layer's
// second GEMM is a GEMV whose partial outputs need an AllReduce (Fig. 3 /
// Megatron). Each decode stream is a pure dependency chain — token t's
// layer l waits on layer l-1 — which the Graph API times exactly like the
// old hand-chained Session::run loop (asserted below). The win appears
// when the server decodes several independent requests: their chains live
// in one Graph and the executor interleaves them, so request B's layers
// run during request A's AllReduce stalls.
//
// Run with no arguments for both paths, `--sequential` for the blocking
// loop only, `--framework` for the Graph-API path only (CI smoke).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/table.h"
#include "framework/session.h"
#include "fused/gemv_allreduce.h"

namespace {

using namespace fcc;

constexpr int kLayers = 8;
constexpr int kTokens = 4;
constexpr int kRequests = 2;  // independent decode streams in one graph
constexpr int kDModel = 8192;
constexpr int kDff = 16384;  // row-parallel: each GPU holds d_ff/4 rows

gpu::Machine::Config machine_config() {
  gpu::Machine::Config machine;
  machine.num_nodes = 1;
  machine.gpus_per_node = 4;
  return machine;
}

fused::GemvAllReduceConfig layer_config() {
  fused::GemvAllReduceConfig layer;
  layer.m = kDModel;      // output dim (after the down-projection)
  layer.k_global = kDff;  // reduction dim, split across GPUs
  layer.functional = false;
  return layer;
}

/// The original blocking loop: one Session::run per layer per token.
TimeNs decode_sequential(fw::Backend backend) {
  fw::Session session(machine_config());
  const auto spec = fw::make_spec("fcc::gemv_allreduce", layer_config());
  TimeNs total = 0;
  for (int tok = 0; tok < kTokens; ++tok) {
    for (int l = 0; l < kLayers; ++l) {
      total += session.run(spec, backend).duration();
    }
  }
  return total;
}

/// One decode stream as a chain Graph: hidden-state tensors thread token t
/// layer l to the next op, so every node depends on its predecessor.
fw::Graph decode_graph(int requests) {
  fw::Graph g;
  for (int r = 0; r < requests; ++r) {
    fw::TensorId hidden = g.tensor("h" + std::to_string(r));
    for (int tok = 0; tok < kTokens; ++tok) {
      for (int l = 0; l < kLayers; ++l) {
        // Each layer consumes and rewrites the stream's hidden state.
        fw::TensorId next = g.tensor("h" + std::to_string(r) + "." +
                                     std::to_string(tok * kLayers + l));
        g.add("fcc::gemv_allreduce", layer_config(), {hidden}, {next},
              "r" + std::to_string(r) + ".t" + std::to_string(tok) + ".l" +
                  std::to_string(l));
        hidden = next;
      }
    }
  }
  return g;
}

TimeNs decode_graph_makespan(fw::Backend backend, int requests,
                             double* overlap = nullptr) {
  fw::Session session(machine_config());
  const auto res = session.run(decode_graph(requests), backend);
  if (overlap != nullptr) *overlap = res.overlap_fraction();
  return res.makespan();
}

int run(bool sequential_path, bool framework_path) {
  TimeNs seq_fused = 0, seq_base = 0;
  if (sequential_path) {
    seq_fused = decode_sequential(fw::Backend::kFused);
    seq_base = decode_sequential(fw::Backend::kBaseline);
  }
  TimeNs graph_fused = 0, graph_base = 0;
  double overlap = 0.0;
  if (framework_path) {
    graph_fused = decode_graph_makespan(fw::Backend::kFused, 1);
    graph_base = decode_graph_makespan(fw::Backend::kBaseline, 1);
  }

  const TimeNs fused_ns = framework_path ? graph_fused : seq_fused;
  const TimeNs base_ns = framework_path ? graph_base : seq_base;
  AsciiTable t({"path", "per-token (us)", "total (us)", "vs baseline"});
  t.add_row({"baseline", AsciiTable::fmt(ns_to_us(base_ns / kTokens), 1),
             AsciiTable::fmt(ns_to_us(base_ns), 1), "1.000"});
  t.add_row({"fused", AsciiTable::fmt(ns_to_us(fused_ns / kTokens), 1),
             AsciiTable::fmt(ns_to_us(fused_ns), 1),
             AsciiTable::fmt(static_cast<double>(fused_ns) / base_ns, 3)});
  std::printf("Transformer decode: %d layers x %d tokens, d_model=%d "
              "d_ff=%d, 4 GPUs row-parallel\n",
              kLayers, kTokens, kDModel, kDff);
  t.print(std::cout);
  std::printf("latency reduction: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(fused_ns) / base_ns));

  if (sequential_path && framework_path) {
    // A decode chain has no overlap to find: the Graph API must time it
    // exactly like the blocking loop.
    std::printf("graph chain == sequential loop: %s (%.1f us vs %.1f us)\n",
                graph_fused == seq_fused ? "OK" : "MISMATCH",
                ns_to_us(graph_fused), ns_to_us(seq_fused));
    if (graph_fused != seq_fused) return 1;
  }

  if (framework_path) {
    // Serving: independent decode streams in one graph overlap each other.
    const TimeNs batched =
        decode_graph_makespan(fw::Backend::kFused, kRequests, &overlap);
    std::printf("%d concurrent requests (fused): %.1f us vs %.1f us "
                "back-to-back (%.2fx, overlap %.3f)\n",
                kRequests, ns_to_us(batched),
                ns_to_us(graph_fused * kRequests),
                static_cast<double>(graph_fused * kRequests) /
                    static_cast<double>(batched),
                overlap);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool sequential_path = true, framework_path = true;
  if (argc > 1) {
    if (std::strcmp(argv[1], "--sequential") == 0) {
      framework_path = false;
    } else if (std::strcmp(argv[1], "--framework") == 0) {
      sequential_path = false;
    } else {
      std::fprintf(stderr, "usage: %s [--sequential|--framework]\n", argv[0]);
      return 2;
    }
  }
  return run(sequential_path, framework_path);
}

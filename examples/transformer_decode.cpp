// Transformer token-phase decode with row-parallel MLP layers.
//
// Auto-regressive decode runs one token at a time, so each MLP layer's
// second GEMM is a GEMV whose partial outputs need an AllReduce (Fig. 3 /
// Megatron). This example decodes a sequence of tokens through a stack of
// layers and compares end-to-end latency: fused GEMV+AllReduce vs the
// bulk-synchronous baseline — the paper's Transformer use case.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "framework/session.h"
#include "fused/gemv_allreduce.h"

int main() {
  using namespace fcc;

  constexpr int kLayers = 8;
  constexpr int kTokens = 4;
  constexpr int kDModel = 8192;
  constexpr int kDff = 16384;  // row-parallel: each GPU holds d_ff/4 rows

  gpu::Machine::Config machine;
  machine.num_nodes = 1;
  machine.gpus_per_node = 4;

  fused::GemvAllReduceConfig layer;
  layer.m = kDModel;      // output dim (after the down-projection)
  layer.k_global = kDff;  // reduction dim, split across GPUs
  layer.functional = false;

  auto decode = [&](fw::Backend backend) {
    fw::Session session(machine);
    const auto spec = fw::make_spec("fcc::gemv_allreduce", layer);
    TimeNs total = 0;
    for (int tok = 0; tok < kTokens; ++tok) {
      for (int l = 0; l < kLayers; ++l) {
        total += session.run(spec, backend).duration();
      }
    }
    return total;
  };

  const TimeNs fused_ns = decode(fw::Backend::kFused);
  const TimeNs base_ns = decode(fw::Backend::kBaseline);

  AsciiTable t({"path", "per-token (us)", "total (us)", "vs baseline"});
  t.add_row({"baseline", AsciiTable::fmt(ns_to_us(base_ns / kTokens), 1),
             AsciiTable::fmt(ns_to_us(base_ns), 1), "1.000"});
  t.add_row({"fused", AsciiTable::fmt(ns_to_us(fused_ns / kTokens), 1),
             AsciiTable::fmt(ns_to_us(fused_ns), 1),
             AsciiTable::fmt(static_cast<double>(fused_ns) / base_ns, 3)});
  std::printf("Transformer decode: %d layers x %d tokens, d_model=%d "
              "d_ff=%d, 4 GPUs row-parallel\n",
              kLayers, kTokens, kDModel, kDff);
  t.print(std::cout);
  std::printf("latency reduction: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(fused_ns) / base_ns));
  return 0;
}

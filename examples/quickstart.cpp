// Quickstart: fuse a GEMV with its AllReduce on a 4-GPU node.
//
// Demonstrates the framework-facing API: build a Session (the simulated
// platform), allocate a symmetric output tensor, run the same row-parallel
// layer through the fused operator and the bulk-synchronous baseline, and
// check both the numerics and the latency win.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "framework/session.h"
#include "fused/gemv_allreduce.h"

int main() {
  using namespace fcc;

  // 1. A single node with four fully connected GPUs (Table I scale-up box).
  gpu::Machine::Config machine;
  machine.num_nodes = 1;
  machine.gpus_per_node = 4;

  // 2. A Megatron-style row-parallel layer: W is (m x k) split row-wise
  //    across the four GPUs; the partial outputs need a sum-AllReduce.
  fused::GemvAllReduceConfig layer;
  layer.m = 512;
  layer.k_global = 1024;
  layer.functional = true;  // carry real values so we can verify them

  // 3. Fused backend.
  fw::Session session_fused(machine);
  auto y_fused = session_fused.symmetric_empty(layer.m);
  auto data_fused = fused::GemvAllReduceData::random(layer, 4, y_fused.get(),
                                                     /*seed=*/2024);
  const auto fused_res = session_fused.run(
      fw::make_spec("fcc::gemv_allreduce", layer, &data_fused),
      fw::Backend::kFused);

  // 4. Bulk-synchronous baseline (GEMV kernel, sync, RCCL-style AllReduce).
  fw::Session session_base(machine);
  auto y_base = session_base.symmetric_empty(layer.m);
  auto data_base = fused::GemvAllReduceData::random(layer, 4, y_base.get(),
                                                    /*seed=*/2024);
  const auto base_res = session_base.run(
      fw::make_spec("fcc::gemv_allreduce", layer, &data_base),
      fw::Backend::kBaseline);

  // 5. Verify: every GPU holds the same reduced vector on both paths.
  double max_err = 0;
  for (PeId pe = 0; pe < 4; ++pe) {
    auto a = y_fused->pe(pe);
    auto b = y_base->pe(pe);
    for (int r = 0; r < layer.m; ++r) {
      max_err = std::max(max_err, static_cast<double>(std::abs(
                                      a[static_cast<size_t>(r)] -
                                      b[static_cast<size_t>(r)])));
    }
  }

  std::printf("fused GEMV+AllReduce : %8.2f us\n",
              ns_to_us(fused_res.duration()));
  std::printf("baseline (kernel+ccl): %8.2f us\n",
              ns_to_us(base_res.duration()));
  std::printf("speedup              : %.2fx\n",
              static_cast<double>(base_res.duration()) /
                  static_cast<double>(fused_res.duration()));
  std::printf("max |fused-baseline| : %.2e  (%s)\n", max_err,
              max_err < 1e-3 ? "OK" : "MISMATCH");
  return max_err < 1e-3 ? 0 : 1;
}

// Quickstart: a two-node program on the Graph API.
//
// Demonstrates the framework-facing workflow end to end: build a Session
// (the simulated platform), declare named symmetric tensors, wire a
// two-node Graph — an embedding exchange feeding a row-parallel MLP layer
// (GEMV whose partial outputs need an AllReduce) — and run the whole
// program with one Session::run(graph) call on both backends. The executor
// schedules each node the moment its inputs are ready; numerics are
// verified by running the MLP node functionally on both paths.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "framework/session.h"
#include "fused/embedding_a2a.h"
#include "fused/gemv_allreduce.h"

int main() {
  using namespace fcc;

  // 1. A single node with four fully connected GPUs (Table I scale-up box).
  gpu::Machine::Config machine;
  machine.num_nodes = 1;
  machine.gpus_per_node = 4;

  // 2. The program's two operators: an embedding + All-to-All exchange...
  fused::EmbeddingA2AConfig emb;
  emb.map.num_pes = 4;
  emb.map.tables_per_pe = 8;
  emb.map.global_batch = 128;
  emb.map.dim = 64;
  emb.map.vectors_per_slice = 8;
  emb.functional = false;  // timing-only stage

  // ...feeding a Megatron-style row-parallel layer: W is (m x k) split
  // row-wise across the four GPUs; partial outputs need a sum-AllReduce.
  fused::GemvAllReduceConfig layer;
  layer.m = 512;
  layer.k_global = 1024;
  layer.functional = true;  // carry real values so we can verify them

  // 3. One Graph, two nodes, dataflow-linked through a named tensor.
  auto run_program = [&](fw::Backend backend, fw::Session& session,
                         fused::GemvAllReduceData* mlp_data) {
    fw::Graph g;
    auto pooled = g.tensor("pooled");
    auto logits = g.tensor("logits");
    g.add("fcc::embedding_a2a", emb, {}, {pooled});
    g.add("fcc::gemv_allreduce", layer, mlp_data, {pooled}, {logits});
    return session.run(g, backend);
  };

  fw::Session session_fused(machine);
  auto y_fused = session_fused.symmetric_empty(layer.m);
  auto data_fused = fused::GemvAllReduceData::random(layer, 4, y_fused.get(),
                                                     /*seed=*/2024);
  const auto fused_res =
      run_program(fw::Backend::kFused, session_fused, &data_fused);

  fw::Session session_base(machine);
  auto y_base = session_base.symmetric_empty(layer.m);
  auto data_base = fused::GemvAllReduceData::random(layer, 4, y_base.get(),
                                                    /*seed=*/2024);
  const auto base_res =
      run_program(fw::Backend::kBaseline, session_base, &data_base);

  // 4. Verify: every GPU holds the same reduced vector on both paths.
  double max_err = 0;
  for (PeId pe = 0; pe < 4; ++pe) {
    auto a = y_fused->pe(pe);
    auto b = y_base->pe(pe);
    for (int r = 0; r < layer.m; ++r) {
      max_err = std::max(max_err, static_cast<double>(std::abs(
                                      a[static_cast<size_t>(r)] -
                                      b[static_cast<size_t>(r)])));
    }
  }

  std::printf("two-node graph (embedding+A2A -> GEMV+AllReduce), 4 GPUs\n");
  for (const auto& node : fused_res.nodes) {
    std::printf("  fused    %-20s %8.2f us\n", node.label.c_str(),
                ns_to_us(node.result.duration()));
  }
  std::printf("fused    end-to-end : %8.2f us\n",
              ns_to_us(fused_res.makespan()));
  std::printf("baseline end-to-end : %8.2f us\n",
              ns_to_us(base_res.makespan()));
  std::printf("speedup             : %.2fx\n",
              static_cast<double>(base_res.makespan()) /
                  static_cast<double>(fused_res.makespan()));
  std::printf("max |fused-baseline|: %.2e  (%s)\n", max_err,
              max_err < 1e-3 ? "OK" : "MISMATCH");
  return max_err < 1e-3 ? 0 : 1;
}

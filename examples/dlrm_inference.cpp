// DLRM forward pass with fused embedding + All-to-All.
//
// Runs the full distributed recommendation model (bottom MLP || embedding
// exchange, then interaction and top MLP) on a 4-GPU node, with the
// embedding + All-to-All stage on both backends. A small functional run
// first proves both paths produce identical CTR outputs; a larger
// timing-only run then reports the latency breakdown. A final section
// serves a stream of inference requests through the Graph API: each
// request's embedding exchange is authored as the *unfused*
// `aten::embedding_bag` + `c10d::all_to_all` pattern (collapsed to
// `fcc::embedding_a2a` by the fused-rewrite pass) feeding a row-parallel
// MLP node, and the executor pipelines request b+1's embedding dispatch
// under request b's MLP — overlap a blocking Session::run chain cannot
// express.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.h"
#include "dlrm/model.h"
#include "fused/gemv_allreduce.h"

namespace {

fcc::dlrm::DlrmConfig model_config(int batch, int tables, int dim,
                                   bool functional, fcc::fw::Backend b) {
  fcc::dlrm::DlrmConfig cfg;
  cfg.emb.map.num_pes = 4;
  cfg.emb.map.tables_per_pe = tables;
  cfg.emb.map.global_batch = batch;
  cfg.emb.map.dim = dim;
  cfg.emb.map.vectors_per_slice = functional ? 2 : 32;
  cfg.emb.pooling = functional ? 4 : 64;
  cfg.emb.rows_per_table = 64;
  cfg.emb.functional = functional;
  cfg.dense_dim = 16;
  cfg.bottom_mlp = {64, dim};
  cfg.top_mlp = {128, 1};
  cfg.backend = b;
  return cfg;
}

}  // namespace

int main() {
  using namespace fcc;

  gpu::Machine::Config machine;
  machine.num_nodes = 1;
  machine.gpus_per_node = 4;

  // --- functional check: both backends produce the same CTR logits ---
  {
    fw::Session sf(machine);
    dlrm::DlrmModel mf(sf, model_config(16, 2, 8, true, fw::Backend::kFused));
    const auto rf = mf.forward(/*seed=*/99);
    fw::Session sb(machine);
    dlrm::DlrmModel mb(sb,
                       model_config(16, 2, 8, true, fw::Backend::kBaseline));
    const auto rb = mb.forward(/*seed=*/99);
    double max_err = 0;
    for (std::size_t pe = 0; pe < rf.logits.size(); ++pe) {
      for (std::size_t i = 0; i < rf.logits[pe].size(); ++i) {
        max_err = std::max(max_err,
                           static_cast<double>(std::abs(
                               rf.logits[pe][i] - rb.logits[pe][i])));
      }
    }
    std::printf("functional check: max |fused - baseline| CTR = %.2e (%s)\n\n",
                max_err, max_err < 1e-4 ? "OK" : "MISMATCH");
    if (max_err >= 1e-4) return 1;
  }

  // --- timing run: production-ish shapes ---
  AsciiTable t({"backend", "emb+A2A (us)", "bottom MLP (us)",
                "inter+top (us)", "total (us)", "normalized"});
  TimeNs base_total = 0;
  for (auto backend : {fw::Backend::kBaseline, fw::Backend::kFused}) {
    fw::Session s(machine);
    dlrm::DlrmModel model(
        s, model_config(1024, 32, 128, false, backend));
    const auto r = model.forward(/*seed=*/7);
    if (backend == fw::Backend::kBaseline) base_total = r.total_ns;
    t.add_row({backend == fw::Backend::kFused ? "fused" : "baseline",
               AsciiTable::fmt(ns_to_us(r.emb_a2a.duration()), 1),
               AsciiTable::fmt(ns_to_us(r.bottom_mlp_ns), 1),
               AsciiTable::fmt(ns_to_us(r.top_mlp_ns), 1),
               AsciiTable::fmt(ns_to_us(r.total_ns), 1),
               AsciiTable::fmt(static_cast<double>(r.total_ns) / base_total,
                               3)});
  }
  std::printf("DLRM forward, 4 GPUs, batch 1024, 32 tables/GPU, dim 128:\n");
  t.print(std::cout);

  // --- request pipeline on the Graph API ---
  // Per request: unfused embedding pattern (rewritten to fcc::embedding_a2a)
  // feeding a row-parallel MLP; one request in flight per stage.
  constexpr int kRequests = 4;
  // Online-serving shapes: small per-request batches (latency-bound), the
  // same tables/dim as the model above, and an MLP stage sized so the two
  // pipeline stages are comparable.
  const auto emb_cfg = model_config(256, 32, 128, false,
                                    fw::Backend::kFused).emb;
  fused::GemvAllReduceConfig mlp_cfg;
  mlp_cfg.m = 4096;
  mlp_cfg.k_global = 8192;
  mlp_cfg.functional = false;

  TimeNs sequential = 0;
  {
    fw::Session s(machine);
    TimeNs start = -1, end = 0;
    for (int r = 0; r < kRequests; ++r) {
      const auto emb =
          s.run(fw::make_spec("fcc::embedding_a2a", emb_cfg));
      if (start < 0) start = emb.start;
      end = s.run(fw::make_spec("fcc::gemv_allreduce", mlp_cfg)).end;
    }
    sequential = end - start;
  }

  fw::Graph g;
  fw::NodeId prev_a2a, prev_mlp;
  for (int r = 0; r < kRequests; ++r) {
    const std::string tag = std::to_string(r);
    auto pooled = g.tensor("pooled" + tag);
    auto exchanged = g.tensor("exchanged" + tag);
    auto ctr = g.tensor("ctr" + tag);
    g.add("aten::embedding_bag", emb_cfg, {}, {pooled}, "emb" + tag);
    auto a2a = g.add("c10d::all_to_all", {pooled}, {exchanged}, "a2a" + tag);
    auto mlp = g.add("fcc::gemv_allreduce", mlp_cfg, {exchanged}, {ctr},
                     "mlp" + tag);
    if (r > 0) {
      g.add_dep(a2a, prev_a2a);
      g.add_dep(mlp, prev_mlp);
    }
    prev_a2a = a2a;
    prev_mlp = mlp;
  }
  fw::Session s(machine);
  const auto pipeline = s.run(g, fw::Backend::kFused);
  std::printf("\n%d-request pipeline via Graph API (pattern nodes rewritten: "
              "%d):\n", kRequests, pipeline.rewrites);
  std::printf("  sequential chain: %8.1f us\n", ns_to_us(sequential));
  std::printf("  graph pipeline:   %8.1f us  (%.2fx, overlap %.3f, critical "
              "path %.1f us)\n",
              ns_to_us(pipeline.makespan()),
              static_cast<double>(sequential) /
                  static_cast<double>(pipeline.makespan()),
              pipeline.overlap_fraction(),
              ns_to_us(pipeline.critical_path_ns));
  return pipeline.overlap_fraction() > 0.0 ? 0 : 1;
}

// DLRM forward pass with fused embedding + All-to-All.
//
// Runs the full distributed recommendation model (bottom MLP || embedding
// exchange, then interaction and top MLP) on a 4-GPU node, with the
// embedding + All-to-All stage on both backends. A small functional run
// first proves both paths produce identical CTR outputs; a larger
// timing-only run then reports the latency breakdown.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "dlrm/model.h"

namespace {

fcc::dlrm::DlrmConfig model_config(int batch, int tables, int dim,
                                   bool functional, fcc::fw::Backend b) {
  fcc::dlrm::DlrmConfig cfg;
  cfg.emb.map.num_pes = 4;
  cfg.emb.map.tables_per_pe = tables;
  cfg.emb.map.global_batch = batch;
  cfg.emb.map.dim = dim;
  cfg.emb.map.vectors_per_slice = functional ? 2 : 32;
  cfg.emb.pooling = functional ? 4 : 64;
  cfg.emb.rows_per_table = 64;
  cfg.emb.functional = functional;
  cfg.dense_dim = 16;
  cfg.bottom_mlp = {64, dim};
  cfg.top_mlp = {128, 1};
  cfg.backend = b;
  return cfg;
}

}  // namespace

int main() {
  using namespace fcc;

  gpu::Machine::Config machine;
  machine.num_nodes = 1;
  machine.gpus_per_node = 4;

  // --- functional check: both backends produce the same CTR logits ---
  {
    fw::Session sf(machine);
    dlrm::DlrmModel mf(sf, model_config(16, 2, 8, true, fw::Backend::kFused));
    const auto rf = mf.forward(/*seed=*/99);
    fw::Session sb(machine);
    dlrm::DlrmModel mb(sb,
                       model_config(16, 2, 8, true, fw::Backend::kBaseline));
    const auto rb = mb.forward(/*seed=*/99);
    double max_err = 0;
    for (std::size_t pe = 0; pe < rf.logits.size(); ++pe) {
      for (std::size_t i = 0; i < rf.logits[pe].size(); ++i) {
        max_err = std::max(max_err,
                           static_cast<double>(std::abs(
                               rf.logits[pe][i] - rb.logits[pe][i])));
      }
    }
    std::printf("functional check: max |fused - baseline| CTR = %.2e (%s)\n\n",
                max_err, max_err < 1e-4 ? "OK" : "MISMATCH");
    if (max_err >= 1e-4) return 1;
  }

  // --- timing run: production-ish shapes ---
  AsciiTable t({"backend", "emb+A2A (us)", "bottom MLP (us)",
                "inter+top (us)", "total (us)", "normalized"});
  TimeNs base_total = 0;
  for (auto backend : {fw::Backend::kBaseline, fw::Backend::kFused}) {
    fw::Session s(machine);
    dlrm::DlrmModel model(
        s, model_config(1024, 32, 128, false, backend));
    const auto r = model.forward(/*seed=*/7);
    if (backend == fw::Backend::kBaseline) base_total = r.total_ns;
    t.add_row({backend == fw::Backend::kFused ? "fused" : "baseline",
               AsciiTable::fmt(ns_to_us(r.emb_a2a.duration()), 1),
               AsciiTable::fmt(ns_to_us(r.bottom_mlp_ns), 1),
               AsciiTable::fmt(ns_to_us(r.top_mlp_ns), 1),
               AsciiTable::fmt(ns_to_us(r.total_ns), 1),
               AsciiTable::fmt(static_cast<double>(r.total_ns) / base_total,
                               3)});
  }
  std::printf("DLRM forward, 4 GPUs, batch 1024, 32 tables/GPU, dim 128:\n");
  t.print(std::cout);
  return 0;
}

// MoE expert layer with a user-authored fused GEMM + All-to-All kernel.
//
// This example shows the *second* integration path from the paper: instead
// of calling a prebuilt framework operator, the fused kernel is authored
// directly in the Triton-analog tile DSL with its communication
// extensions — exactly how the paper built its GEMM+All-to-All prototype.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "gpu/machine.h"
#include "ops/gemv.h"
#include "shmem/flags.h"
#include "shmem/world.h"
#include "sim/task.h"
#include "triton/tile_lang.h"

namespace {

using namespace fcc;

constexpr int kExperts = 4;       // one per GPU
constexpr int kRowsPerOrigin = 256;
constexpr int kDModel = 512;
constexpr int kDff = 1024;

sim::Task run_kernel(sim::Engine&, triton::TileKernel& k,
                     const triton::TileKernel::LaunchConfig& lc, bool& done) {
  co_await k.launch(lc);
  done = true;
}

}  // namespace

int main() {
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = kExperts;
  gpu::Machine machine(mc);
  shmem::World world(machine);

  ops::GemmShape shape;
  shape.m = kExperts * kRowsPerOrigin;  // rows grouped by origin GPU
  shape.n = kDModel;
  shape.k = kDff;

  // Expert 0's activations/weights (functional run on one expert, timing
  // would launch on all four — see bench_fig10 for the full sweep).
  Rng rng(77);
  auto a = ops::random_vector(
      static_cast<size_t>(shape.m) * static_cast<size_t>(shape.k), rng);
  auto b = ops::random_vector(
      static_cast<size_t>(shape.k) * static_cast<size_t>(shape.n), rng);
  std::vector<std::vector<float>> received(
      kExperts, std::vector<float>(static_cast<size_t>(kRowsPerOrigin) *
                                       static_cast<size_t>(kDModel),
                                   0.0f));
  shmem::FlagArray arrivals(machine.engine(), kExperts, 1);

  // ---- the fused kernel, authored in the DSL ----
  triton::TileKernel kernel("moe_combine", shape,
                            ops::kTritonGemmEfficiency);
  auto origin_of = [](const triton::TileKernel::Ctx& ctx) {
    return ctx.shape->row_begin(ctx.pid) / kRowsPerOrigin;
  };
  kernel.load_a().load_b().dot();
  kernel.put_c_remote(
      origin_of,
      [&received](const triton::TileKernel::Ctx& ctx,
                  const std::vector<float>& tile) {
        const auto& sh = *ctx.shape;
        const PeId origin = sh.row_begin(ctx.pid) / kRowsPerOrigin;
        const int cols = sh.col_end(ctx.pid) - sh.col_begin(ctx.pid);
        auto& out = received[static_cast<size_t>(origin)];
        for (int r = sh.row_begin(ctx.pid); r < sh.row_end(ctx.pid); ++r) {
          const int lr = r - origin * kRowsPerOrigin;
          for (int j = 0; j < cols; ++j) {
            out[static_cast<size_t>(lr) * kDModel +
                static_cast<size_t>(sh.col_begin(ctx.pid) + j)] =
                tile[static_cast<size_t>(r - sh.row_begin(ctx.pid)) * cols +
                     static_cast<size_t>(j)];
          }
        }
      });
  kernel.fence();
  kernel.atomic_add_remote(&arrivals, origin_of,
                           [](const triton::TileKernel::Ctx&) { return 0u; });

  triton::TileKernel::LaunchConfig lc;
  lc.world = &world;
  lc.pe = 0;
  lc.policy = gpu::SchedulePolicy::kCommAware;
  lc.functional = true;
  lc.a = a;
  lc.b = b;

  bool done = false;
  run_kernel(machine.engine(), kernel, lc, done);
  machine.engine().run();

  // Spot-check one returned row against the reference GEMM.
  const auto ref = ops::gemm_reference(shape, a, b);
  const int check_origin = 2, check_row = 5, check_col = 17;
  const float got = received[check_origin]
                            [static_cast<size_t>(check_row) * kDModel +
                             check_col];
  const float want =
      ref[static_cast<size_t>(check_origin * kRowsPerOrigin + check_row) *
              kDModel +
          check_col];
  std::printf("MoE combine (DSL-authored fused GEMM+A2A), expert 0 of %d\n",
              kExperts);
  std::printf("  kernel finished at t = %.1f us (simulated)\n",
              ns_to_us(machine.engine().now()));
  std::printf("  tiles delivered to every origin, spot check: got %.4f, "
              "want %.4f (%s)\n",
              got, want, std::abs(got - want) < 1e-3 ? "OK" : "MISMATCH");
  std::printf("  fabric bytes moved: %lld\n",
              static_cast<long long>(machine.fabric(0).total_bytes()));
  return std::abs(got - want) < 1e-3 ? 0 : 1;
}

// MoE expert layer, shown through both of the paper's integration paths:
//
//  1. (default) A user-authored fused GEMM + All-to-All combine kernel,
//     written directly in the Triton-analog tile DSL with its communication
//     extensions — exactly how the paper built its GEMM+All-to-All
//     prototype.
//  2. (--framework) The prebuilt framework operator: `fw::Session`
//     dispatches `fcc::moe_dispatch` — the routed, variable-size dispatch
//     All-to-All-v with a 4x hot expert — by registry name, fused and
//     baseline backends, and cross-checks their outputs.
//
// Run with no arguments for both, or `--dsl-only` / `--framework` to pick.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "framework/session.h"
#include "fused/moe_dispatch.h"
#include "gpu/machine.h"
#include "ops/gemv.h"
#include "shmem/flags.h"
#include "shmem/world.h"
#include "sim/task.h"
#include "triton/tile_lang.h"

namespace {

using namespace fcc;

constexpr int kExperts = 4;       // one per GPU
constexpr int kRowsPerOrigin = 256;
constexpr int kDModel = 512;
constexpr int kDff = 1024;

sim::Task run_kernel(sim::Engine&, triton::TileKernel& k,
                     const triton::TileKernel::LaunchConfig& lc, bool& done) {
  co_await k.launch(lc);
  done = true;
}

// Framework path: dispatch the registered MoE dispatch operator through the
// Session, fused and baseline, and verify they agree elementwise.
int run_framework_path() {
  fused::MoeDispatchConfig cfg;
  cfg.tokens_per_pe = 64;
  cfg.d_model = 64;
  cfg.d_out = 64;
  cfg.block_m = 16;
  cfg.block_n = 32;
  cfg.hot_expert_factor = 4.0;
  cfg.functional = true;

  const auto plans = fused::skewed_plans(cfg, kExperts);
  const auto layout = fused::DispatchLayout::build(plans, cfg.block_m);

  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = kExperts;

  auto run_backend = [&](fw::Backend backend, fused::OperatorResult& res) {
    fw::Session session(mc);
    auto recv = session.symmetric_empty(layout.recv_capacity(cfg.d_out));
    auto data =
        fused::MoeDispatchData::random(cfg, kExperts, recv.get(), /*seed=*/7);
    res = session.run(fw::make_spec("fcc::moe_dispatch", cfg, &data), backend);
    // Copy out the real rows for the cross-check.
    std::vector<std::vector<float>> out;
    for (int e = 0; e < kExperts; ++e) {
      auto span = recv->pe(e);
      const auto real =
          static_cast<size_t>(layout.recv_rows[static_cast<size_t>(e)]) *
          static_cast<size_t>(cfg.d_out);
      out.emplace_back(span.begin(), span.begin() + real);
    }
    return out;
  };

  fused::OperatorResult rf, rb;
  const auto fused_out = run_backend(fw::Backend::kFused, rf);
  const auto baseline_out = run_backend(fw::Backend::kBaseline, rb);

  bool match = true;
  for (int e = 0; e < kExperts && match; ++e) {
    const auto& a = fused_out[static_cast<size_t>(e)];
    const auto& b = baseline_out[static_cast<size_t>(e)];
    for (size_t i = 0; i < a.size(); ++i) {
      if (std::abs(a[i] - b[i]) > 1e-3f) {
        match = false;
        break;
      }
    }
  }

  std::printf("MoE dispatch via fw::Session (registry op fcc::moe_dispatch, "
              "4x hot expert)\n");
  std::printf("  hot expert rows: %lld of %lld total (top-2 routing)\n",
              static_cast<long long>(layout.recv_rows[0]),
              static_cast<long long>(kExperts * cfg.assignments()));
  std::printf("  fused:    %.1f us\n", ns_to_us(rf.duration()));
  std::printf("  baseline: %.1f us\n", ns_to_us(rb.duration()));
  std::printf("  outputs %s\n", match ? "match" : "MISMATCH");
  return match ? 0 : 1;
}

int run_dsl_path() {
  gpu::Machine::Config mc;
  mc.num_nodes = 1;
  mc.gpus_per_node = kExperts;
  gpu::Machine machine(mc);
  shmem::World world(machine);

  ops::GemmShape shape;
  shape.m = kExperts * kRowsPerOrigin;  // rows grouped by origin GPU
  shape.n = kDModel;
  shape.k = kDff;

  // Expert 0's activations/weights (functional run on one expert, timing
  // would launch on all four — see bench_fig10 for the full sweep).
  Rng rng(77);
  auto a = ops::random_vector(
      static_cast<size_t>(shape.m) * static_cast<size_t>(shape.k), rng);
  auto b = ops::random_vector(
      static_cast<size_t>(shape.k) * static_cast<size_t>(shape.n), rng);
  std::vector<std::vector<float>> received(
      kExperts, std::vector<float>(static_cast<size_t>(kRowsPerOrigin) *
                                       static_cast<size_t>(kDModel),
                                   0.0f));
  shmem::FlagArray arrivals(machine.engine(), kExperts, 1);

  // ---- the fused kernel, authored in the DSL ----
  triton::TileKernel kernel("moe_combine", shape,
                            ops::kTritonGemmEfficiency);
  auto origin_of = [](const triton::TileKernel::Ctx& ctx) {
    return ctx.shape->row_begin(ctx.pid) / kRowsPerOrigin;
  };
  kernel.load_a().load_b().dot();
  kernel.put_c_remote(
      origin_of,
      [&received](const triton::TileKernel::Ctx& ctx,
                  const std::vector<float>& tile) {
        const auto& sh = *ctx.shape;
        const PeId origin = sh.row_begin(ctx.pid) / kRowsPerOrigin;
        const int cols = sh.col_end(ctx.pid) - sh.col_begin(ctx.pid);
        auto& out = received[static_cast<size_t>(origin)];
        for (int r = sh.row_begin(ctx.pid); r < sh.row_end(ctx.pid); ++r) {
          const int lr = r - origin * kRowsPerOrigin;
          for (int j = 0; j < cols; ++j) {
            out[static_cast<size_t>(lr) * kDModel +
                static_cast<size_t>(sh.col_begin(ctx.pid) + j)] =
                tile[static_cast<size_t>(r - sh.row_begin(ctx.pid)) * cols +
                     static_cast<size_t>(j)];
          }
        }
      });
  kernel.fence();
  kernel.atomic_add_remote(&arrivals, origin_of,
                           [](const triton::TileKernel::Ctx&) { return 0u; });

  triton::TileKernel::LaunchConfig lc;
  lc.world = &world;
  lc.pe = 0;
  lc.policy = gpu::SchedulePolicy::kCommAware;
  lc.functional = true;
  lc.a = a;
  lc.b = b;

  bool done = false;
  run_kernel(machine.engine(), kernel, lc, done);
  machine.engine().run();

  // Spot-check one returned row against the reference GEMM.
  const auto ref = ops::gemm_reference(shape, a, b);
  const int check_origin = 2, check_row = 5, check_col = 17;
  const float got = received[check_origin]
                            [static_cast<size_t>(check_row) * kDModel +
                             check_col];
  const float want =
      ref[static_cast<size_t>(check_origin * kRowsPerOrigin + check_row) *
              kDModel +
          check_col];
  std::printf("MoE combine (DSL-authored fused GEMM+A2A), expert 0 of %d\n",
              kExperts);
  std::printf("  kernel finished at t = %.1f us (simulated)\n",
              ns_to_us(machine.engine().now()));
  std::printf("  tiles delivered to every origin, spot check: got %.4f, "
              "want %.4f (%s)\n",
              got, want, std::abs(got - want) < 1e-3 ? "OK" : "MISMATCH");
  std::printf("  fabric bytes moved: %lld\n",
              static_cast<long long>(machine.fabric(0).total_bytes()));
  return std::abs(got - want) < 1e-3 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool dsl = true, framework = true;
  if (argc > 1) {
    if (std::strcmp(argv[1], "--dsl-only") == 0) {
      framework = false;
    } else if (std::strcmp(argv[1], "--framework") == 0) {
      dsl = false;
    } else {
      std::fprintf(stderr, "usage: %s [--dsl-only|--framework]\n", argv[0]);
      return 2;
    }
  }
  int rc = 0;
  if (dsl) rc |= run_dsl_path();
  if (framework) rc |= run_framework_path();
  return rc;
}

// 128-node DLRM training with fused embedding + All-to-All (Fig. 15 setup).
//
// Uses the ASTRA-Sim-analog trainer: per-kernel times from the GPU cost
// model, collectives on the 2D-torus network model, and the fused execution
// graph that pipelines each All-to-All against its embedding pass.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "scaleout/dlrm_training.h"

int main() {
  using namespace fcc;
  using namespace fcc::scaleout;

  TrainingConfig cfg;  // Table II model (dim 92, 43 MLP layers, pooling 70)
  cfg.num_nodes = 128;
  cfg.global_batch = 64 * 128;  // matches bench_fig15 (paper-band batch)

  DlrmTrainingSim sim(cfg);
  const auto base = sim.simulate(false);
  const auto fused = sim.simulate(true);

  std::printf("DLRM training pass, %d nodes (2D torus %dx%d, 200 Gb/s)\n\n",
              cfg.num_nodes, torus_for_nodes(cfg.num_nodes, cfg.torus).dim_x,
              torus_for_nodes(cfg.num_nodes, cfg.torus).dim_y);

  AsciiTable parts({"component", "time (us)"});
  parts.add_row({"embedding fwd", AsciiTable::fmt(ns_to_us(base.emb_fwd), 1)});
  parts.add_row({"All-to-All fwd", AsciiTable::fmt(ns_to_us(base.a2a_fwd), 1)});
  parts.add_row({"bottom MLP fwd",
                 AsciiTable::fmt(ns_to_us(base.bottom_mlp_fwd), 1)});
  parts.add_row({"top MLP fwd", AsciiTable::fmt(ns_to_us(base.top_mlp_fwd), 1)});
  parts.add_row({"interaction", AsciiTable::fmt(ns_to_us(base.interaction), 1)});
  parts.add_row({"grad AllReduce (exposed)",
                 AsciiTable::fmt(ns_to_us(base.exposed_allreduce), 1)});
  parts.print(std::cout);

  AsciiTable t({"graph", "iteration (us)", "normalized"});
  t.add_row({"baseline", AsciiTable::fmt(ns_to_us(base.total), 1), "1.000"});
  t.add_row({"fused emb+A2A", AsciiTable::fmt(ns_to_us(fused.total), 1),
             AsciiTable::fmt(static_cast<double>(fused.total) / base.total,
                             3)});
  t.print(std::cout);
  std::printf("training-time reduction: %.1f%% (paper Fig. 15: ~21%%)\n",
              100.0 * (1.0 - static_cast<double>(fused.total) / base.total));
  return 0;
}
